"""Tests for EdgeServer and UplinkLink."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.network import UplinkLink
from repro.sim.server import EdgeServer, QueuedFrame
from repro.video.profiles import DeviceProfile


def _frame(sid, fid, t_emit, t_arr, p, done=None):
    return QueuedFrame(
        stream_id=sid,
        frame_id=fid,
        emit_time=t_emit,
        arrival_time=t_arr,
        processing_time=p,
        on_done=done,
    )


class TestEdgeServer:
    def test_single_frame_no_queueing(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        srv.submit(_frame(0, 1, 0.0, 0.0, 0.1))
        q.run()
        fr = srv.completed[0]
        assert fr.queueing_delay == pytest.approx(0.0)
        assert fr.finish_time == pytest.approx(0.1)

    def test_fifo_order_and_queueing_delay(self):
        q = EventQueue()
        srv = EdgeServer(0, q)

        def submit_both():
            srv.submit(_frame(0, 1, 0.0, 0.0, 0.2))
            srv.submit(_frame(1, 1, 0.0, 0.0, 0.1))

        q.schedule(0.0, submit_both)
        q.run()
        first, second = srv.completed
        assert first.stream_id == 0
        assert second.queueing_delay == pytest.approx(0.2)
        assert second.finish_time == pytest.approx(0.3)

    def test_busy_time_accumulates(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        q.schedule(0.0, lambda: srv.submit(_frame(0, 1, 0, 0, 0.3)))
        q.schedule(1.0, lambda: srv.submit(_frame(0, 2, 1, 1, 0.2)))
        q.run()
        assert srv.busy_time == pytest.approx(0.5)
        assert srv.frames_processed == 2

    def test_utilization_and_energy(self):
        q = EventQueue()
        prof = DeviceProfile(idle_power=4.0, compute_power=10.0)
        srv = EdgeServer(0, q, profile=prof)
        q.schedule(0.0, lambda: srv.submit(_frame(0, 1, 0, 0, 0.5)))
        q.run()
        assert srv.utilization(2.0) == pytest.approx(0.25)
        assert srv.energy_consumed(2.0) == pytest.approx(4.0 * 2.0 + 10.0 * 0.5)

    def test_on_done_callback(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        seen = []
        srv.submit(_frame(0, 1, 0, 0, 0.1, done=lambda fr, t: seen.append(t)))
        q.run()
        assert seen == [pytest.approx(0.1)]

    def test_arrival_during_processing_waits(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        q.schedule(0.0, lambda: srv.submit(_frame(0, 1, 0, 0, 1.0)))
        q.schedule(0.5, lambda: srv.submit(_frame(1, 1, 0.5, 0.5, 0.1)))
        q.run()
        second = srv.completed[1]
        assert second.start_time == pytest.approx(1.0)
        assert second.queueing_delay == pytest.approx(0.5)

    def test_invalid_processing_time(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        with pytest.raises(ValueError):
            srv.submit(_frame(0, 1, 0, 0, 0.0))


class TestUplinkLink:
    def test_transfer_time(self):
        q = EventQueue()
        link = UplinkLink(0, 10.0, q)  # 10 Mbps
        assert link.transfer_time(1e6) == pytest.approx(0.1)

    def test_delivery_scheduled(self):
        q = EventQueue()
        link = UplinkLink(0, 10.0, q)
        arrivals = []
        link.send(1e6, arrivals.append)
        q.run()
        assert arrivals == [pytest.approx(0.1)]

    def test_fifo_serialization(self):
        q = EventQueue()
        link = UplinkLink(0, 10.0, q)
        arrivals = []

        def send_two():
            link.send(1e6, arrivals.append)
            link.send(1e6, arrivals.append)

        q.schedule(0.0, send_two)
        q.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_idle_gap_not_counted(self):
        q = EventQueue()
        link = UplinkLink(0, 10.0, q)
        arrivals = []
        q.schedule(0.0, lambda: link.send(1e6, arrivals.append))
        q.schedule(5.0, lambda: link.send(1e6, arrivals.append))
        q.run()
        assert arrivals[1] == pytest.approx(5.1)

    def test_mean_throughput(self):
        q = EventQueue()
        link = UplinkLink(0, 10.0, q)
        q.schedule(0.0, lambda: link.send(5e6, lambda t: None))
        q.run()
        assert link.mean_throughput(1.0) == pytest.approx(5.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            UplinkLink(0, 0.0, EventQueue())
