"""Integration tests: cluster runs reproduce the paper's §2.2 phenomena.

The key behaviours: (a) latency is flat w.r.t. fps when resources are
ample (Fig. 2, 2nd subplot); (b) latency accumulates when streams
contend on one server (Fig. 3(a)); (c) Theorem-1 staggering plus Const2
yields zero measured jitter (Fig. 4 / §4.1).
"""

import numpy as np
import pytest

from repro.sim import EdgeCluster, StreamSpec, simulate_schedule
from repro.video import DeviceProfile, EncoderModel


FAST_PROFILE = DeviceProfile(effective_tflops=50.0, fixed_overhead=0.001)
TINY_ENC = EncoderModel(base_bits=1000.0, overhead_bits=0.0)


class TestStreamSpec:
    def test_period(self):
        s = StreamSpec(0, fps=10.0, processing_time=0.01, bits_per_frame=100)
        assert s.period == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            StreamSpec(0, fps=0.0, processing_time=0.01, bits_per_frame=1)


class TestClusterBasics:
    def test_assignment_length_mismatch(self):
        c = EdgeCluster([10.0])
        with pytest.raises(ValueError):
            c.run([StreamSpec(0, 1.0, 0.01, 100.0)], [0, 1], 1.0)

    def test_assignment_out_of_range(self):
        c = EdgeCluster([10.0])
        with pytest.raises(ValueError):
            c.run([StreamSpec(0, 1.0, 0.01, 100.0)], [3], 1.0)

    def test_dropped_stream_emits_nothing(self):
        c = EdgeCluster([10.0])
        rep = c.run([StreamSpec(0, 10.0, 0.01, 100.0)], [-1], 2.0)
        assert rep.streams[0].frames_emitted == 0

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            EdgeCluster([])

    def test_frame_counts(self):
        c = EdgeCluster([100.0])
        rep = c.run([StreamSpec(0, 10.0, 0.001, 1000.0)], [0], 1.0)
        # frames at t=0, 0.1, ..., 1.0 -> 11 emitted
        assert rep.streams[0].frames_emitted == 11
        assert rep.streams[0].frames_completed >= 10


class TestLatencyBehaviour:
    def test_latency_flat_in_fps_when_uncontended(self):
        """Fig. 2: e2e latency independent of fps with ample resources."""
        lat = {}
        for fps in (5.0, 15.0, 30.0):
            rep = simulate_schedule(
                [800.0], [fps], [0], [100.0], horizon=5.0,
                profile=FAST_PROFILE, encoder=TINY_ENC,
            )
            lat[fps] = rep.mean_latency
        vals = list(lat.values())
        assert max(vals) - min(vals) < 0.005

    def test_latency_accumulates_under_contention(self):
        """Fig. 3(a): overload on one server grows queueing delay."""
        # Processing 0.15 s per frame at 10 fps = 1.5 utilization: overload.
        spec = StreamSpec(0, fps=10.0, processing_time=0.15, bits_per_frame=1e3)
        c = EdgeCluster([1000.0])
        rep = c.run([spec], [0], 5.0)
        m = rep.streams[0]
        # queueing delay increases monotonically across frames
        assert m.queueing_delays[-1] > m.queueing_delays[0]
        assert m.max_jitter > 0.1

    def test_two_streams_contend(self):
        """Two streams whose combined load > 1 show jitter."""
        specs = [
            StreamSpec(0, fps=5.0, processing_time=0.15, bits_per_frame=1e3),
            StreamSpec(1, fps=5.0, processing_time=0.15, bits_per_frame=1e3, offset=0.0),
        ]
        c = EdgeCluster([1000.0])
        rep = c.run(specs, [0, 0], 5.0)
        assert rep.max_jitter > 0.0

    def test_zero_jitter_for_const2_schedule(self):
        """Theorem 1: harmonic periods + stagger -> zero queueing delay."""
        # periods 0.2 and 0.4, p = 0.05 each, sum p = 0.1 <= gcd = 0.2
        specs = [
            StreamSpec(0, fps=5.0, processing_time=0.05, bits_per_frame=1e-3, offset=0.0),
            StreamSpec(1, fps=2.5, processing_time=0.05, bits_per_frame=1e-3, offset=0.05),
        ]
        c = EdgeCluster([1000.0])
        rep = c.run(specs, [0, 0], 10.0)
        assert rep.max_jitter == pytest.approx(0.0, abs=1e-9)

    def test_non_harmonic_periods_cause_jitter(self):
        """Fig. 4: non-harmonic periods on one server -> jitter."""
        # periods 0.3 and 0.4 s; gcd = 0.1 < p1+p2 = 0.18 -> Const2 violated
        specs = [
            StreamSpec(0, fps=1 / 0.3, processing_time=0.09, bits_per_frame=1e-3),
            StreamSpec(1, fps=2.5, processing_time=0.09, bits_per_frame=1e-3, offset=0.09),
        ]
        c = EdgeCluster([1000.0])
        rep = c.run(specs, [0, 0], 20.0)
        assert rep.max_jitter > 0.0


class TestSimulateSchedule:
    def test_basic_run(self):
        rep = simulate_schedule(
            [960.0, 480.0], [5.0, 10.0], [0, 1], [20.0, 20.0], horizon=3.0
        )
        assert rep.mean_latency > 0
        assert rep.total_bandwidth_mbps > 0
        assert rep.computation_tflops > 0
        assert rep.total_power_watts > 0

    def test_stagger_reduces_jitter(self):
        # Two identical streams on one server, load ~0.9.
        args = dict(
            resolutions=[1400.0, 1400.0],
            fps=[6.0, 6.0],
            assignment=[0, 0],
            bandwidths_mbps=[1000.0],
            horizon=5.0,
            encoder=TINY_ENC,
        )
        rep_stag = simulate_schedule(**args, stagger=True)
        rep_sync = simulate_schedule(**args, stagger=False)
        assert rep_stag.max_jitter <= rep_sync.max_jitter
        assert rep_sync.max_jitter > 0  # simultaneous arrivals collide

    def test_bandwidth_accounting_matches_encoder(self):
        enc = EncoderModel()
        rep = simulate_schedule(
            [960.0], [10.0], [0], [100.0], horizon=10.0, encoder=enc,
            profile=FAST_PROFILE,
        )
        expected_mbps = enc.bits_per_frame(960.0) * 10.0 / 1e6
        assert rep.total_bandwidth_mbps == pytest.approx(expected_mbps, rel=0.15)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            simulate_schedule([960.0], [5.0, 6.0], [0], [10.0])

    def test_textures_length_mismatch(self):
        with pytest.raises(ValueError):
            simulate_schedule([960.0], [5.0], [0], [10.0], textures=[1.0, 2.0])

    def test_report_completion_ratio(self):
        rep = simulate_schedule(
            [480.0], [10.0], [0], [50.0], horizon=3.0, profile=FAST_PROFILE
        )
        assert 0.8 <= rep.completion_ratio <= 1.0
