"""Tests for server degradation (failure injection) in the simulator."""

import numpy as np
import pytest

from repro.sim import EdgeCluster, StreamSpec
from repro.sim.events import EventQueue
from repro.sim.server import EdgeServer, QueuedFrame


class TestSpeedFactor:
    def test_default_nominal(self):
        srv = EdgeServer(0, EventQueue())
        assert srv.speed_factor == 1.0

    def test_slowdown_stretches_processing(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        srv.set_speed_factor(0.5)
        srv.submit(QueuedFrame(0, 1, 0.0, 0.0, 0.1))
        q.run()
        assert srv.completed[0].finish_time == pytest.approx(0.2)

    def test_speedup_shrinks_processing(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        srv.set_speed_factor(2.0)
        srv.submit(QueuedFrame(0, 1, 0.0, 0.0, 0.1))
        q.run()
        assert srv.completed[0].finish_time == pytest.approx(0.05)

    def test_busy_time_reflects_effective_duration(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        srv.set_speed_factor(0.5)
        srv.submit(QueuedFrame(0, 1, 0.0, 0.0, 0.1))
        q.run()
        assert srv.busy_time == pytest.approx(0.2)

    def test_invalid_factor(self):
        srv = EdgeServer(0, EventQueue())
        with pytest.raises(ValueError):
            srv.set_speed_factor(0.0)

    def test_scheduled_slowdown_mid_run(self):
        """Frames before t=1 run at speed; frames after run at half."""
        q = EventQueue()
        srv = EdgeServer(0, q)
        srv.schedule_slowdown(1.0, 0.5)
        q.schedule(0.0, lambda: srv.submit(QueuedFrame(0, 1, 0, 0, 0.1)))
        q.schedule(2.0, lambda: srv.submit(QueuedFrame(0, 2, 2, 2, 0.1)))
        q.run()
        first, second = srv.completed
        assert first.finish_time == pytest.approx(0.1)
        assert second.finish_time == pytest.approx(2.2)


class TestDegradationEndToEnd:
    def test_slowdown_breaks_zero_jitter_schedule(self):
        """A schedule that is zero-jitter at nominal speed accumulates
        queueing delay once the server throttles — the exact drift the
        online scheduler is built to catch."""
        specs = [
            StreamSpec(0, fps=5.0, processing_time=0.08, bits_per_frame=1e-3, offset=0.0),
            StreamSpec(1, fps=5.0, processing_time=0.08, bits_per_frame=1e-3, offset=0.08),
        ]
        nominal = EdgeCluster([1e6])
        rep = nominal.run(specs, [0, 0], 6.0)
        assert rep.max_jitter < 1e-9

        throttled = EdgeCluster([1e6])
        throttled.servers[0].schedule_slowdown(2.0, 0.5)
        rep2 = throttled.run(specs, [0, 0], 6.0)
        assert rep2.max_jitter > 0.01
        # latency before the throttle unaffected
        assert rep2.streams[0].latencies[0] == pytest.approx(
            rep.streams[0].latencies[0], abs=1e-9
        )
