"""Tests for the discrete-event engine."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, lambda: log.append("b"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(3.0, lambda: log.append("c"))
        q.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        q = EventQueue()
        log = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: log.append(n))
        q.run()
        assert log == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("low"), priority=1)
        q.schedule(1.0, lambda: log.append("high"), priority=-1)
        q.run()
        assert log == ["high", "low"]

    def test_clock_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(5.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [5.0]

    def test_schedule_in_relative(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: q.schedule_in(2.0, lambda: seen.append(q.now)))
        q.run()
        assert seen == [3.0]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda: None)

    def test_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda: None)

    def test_run_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(10.0, lambda: log.append(10))
        q.run(until=5.0)
        assert log == [1]
        assert q.now == 5.0  # clock advanced to the horizon
        assert len(q) == 1  # the 10.0 event remains

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        q.schedule(2.0, lambda: log.append("y"))
        q.run()
        assert log == ["y"]

    def test_self_rescheduling_with_budget(self):
        q = EventQueue()

        def loop():
            q.schedule_in(0.1, loop)

        q.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_event_count_returned(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda: None)
        assert q.run() == 5
