"""Tests for bandwidth traces and frame trace recording."""

import numpy as np
import pytest

from repro.sim import (
    BandwidthTrace,
    EdgeServer,
    FrameTraceRecorder,
    TracedUplinkLink,
)
from repro.sim.events import EventQueue
from repro.sim.server import QueuedFrame


class TestBandwidthTrace:
    def test_constant(self):
        t = BandwidthTrace.constant(20.0)
        assert t.at(0.0) == 20.0
        assert t.at(100.0) == 20.0

    def test_piecewise_lookup(self):
        t = BandwidthTrace([0.0, 5.0, 10.0], [10.0, 20.0, 5.0])
        assert t.at(0.0) == 10.0
        assert t.at(4.999) == 10.0
        assert t.at(5.0) == 20.0
        assert t.at(12.0) == 5.0

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            BandwidthTrace([1.0], [10.0])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0.0, 0.0], [10.0, 20.0])

    def test_positive_values(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0.0], [0.0])

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            BandwidthTrace.constant(10.0).at(-1.0)

    def test_random_walk_bounds(self):
        t = BandwidthTrace.random_walk(60.0, lo=5.0, hi=30.0, rng=0)
        assert np.all(t.values >= 5.0) and np.all(t.values <= 30.0)
        assert t.times[0] == 0.0
        assert t.times[-1] >= 60.0

    def test_random_walk_deterministic(self):
        a = BandwidthTrace.random_walk(10.0, rng=3)
        b = BandwidthTrace.random_walk(10.0, rng=3)
        np.testing.assert_array_equal(a.values, b.values)


class TestTracedUplinkLink:
    def test_transfer_uses_bandwidth_at_start(self):
        q = EventQueue()
        trace = BandwidthTrace([0.0, 1.0], [10.0, 100.0])
        link = TracedUplinkLink(0, trace, q)
        arrivals = []
        # 1 Mb at t=0: 10 Mbps -> 0.1 s
        q.schedule(0.0, lambda: link.send(1e6, arrivals.append))
        # 1 Mb at t=2: 100 Mbps -> 0.01 s
        q.schedule(2.0, lambda: link.send(1e6, arrivals.append))
        q.run()
        assert arrivals[0] == pytest.approx(0.1)
        assert arrivals[1] == pytest.approx(2.01)

    def test_degradation_slows_delivery(self):
        q = EventQueue()
        trace = BandwidthTrace([0.0, 1.0], [100.0, 1.0])
        link = TracedUplinkLink(0, trace, q)
        arrivals = []
        q.schedule(1.5, lambda: link.send(1e6, arrivals.append))
        q.run()
        assert arrivals[0] == pytest.approx(2.5)  # 1 Mb at 1 Mbps


class TestFrameTraceRecorder:
    def _run_with_recorder(self):
        q = EventQueue()
        srv = EdgeServer(0, q)
        rec = FrameTraceRecorder()
        for i, t in enumerate((0.0, 0.5, 1.0)):
            q.schedule(
                t,
                lambda i=i, t=t: srv.submit(
                    QueuedFrame(
                        0, i + 1, t, t, 0.1, on_done=lambda fr, _t: rec.record(fr)
                    )
                ),
            )
        q.run()
        return rec

    def test_records_all_frames(self):
        rec = self._run_with_recorder()
        assert len(rec) == 3

    def test_event_fields(self):
        rec = self._run_with_recorder()
        ev = rec.events[0]
        assert ev.e2e_latency == pytest.approx(0.1)
        assert ev.queueing_delay == pytest.approx(0.0)

    def test_to_arrays(self):
        rec = self._run_with_recorder()
        arrs = rec.to_arrays()
        assert arrs["emit_time"].shape == (3,)
        np.testing.assert_allclose(arrs["emit_time"], [0.0, 0.5, 1.0])

    def test_summary(self):
        rec = self._run_with_recorder()
        s = rec.summary()
        assert s["n_frames"] == 3.0
        assert s["mean_latency"] == pytest.approx(0.1)
        assert s["max_queueing_delay"] == pytest.approx(0.0)

    def test_empty_recorder(self):
        rec = FrameTraceRecorder()
        assert rec.summary() == {"n_frames": 0.0}
        assert rec.to_arrays()["emit_time"].shape == (0,)
