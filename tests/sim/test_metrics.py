"""Tests for the simulation metrics containers."""

import numpy as np
import pytest

from repro.sim.metrics import ServerMetrics, SimulationReport, StreamMetrics


def _stream_metrics(lat, qd, emitted=None, completed=None):
    lat = np.asarray(lat, dtype=float)
    return StreamMetrics(
        stream_id=0,
        latencies=lat,
        queueing_delays=np.asarray(qd, dtype=float),
        frames_emitted=emitted if emitted is not None else lat.size,
        frames_completed=completed if completed is not None else lat.size,
    )


class TestStreamMetrics:
    def test_mean_latency(self):
        m = _stream_metrics([0.1, 0.2, 0.3], [0, 0, 0])
        assert m.mean_latency == pytest.approx(0.2)

    def test_p99(self):
        m = _stream_metrics(np.linspace(0, 1, 101), np.zeros(101))
        assert m.p99_latency == pytest.approx(0.99)

    def test_max_jitter(self):
        m = _stream_metrics([0.1, 0.1], [0.0, 0.05])
        assert m.max_jitter == pytest.approx(0.05)

    def test_empty_stream(self):
        m = _stream_metrics([], [], emitted=5, completed=0)
        assert np.isnan(m.mean_latency)
        assert m.max_jitter == 0.0
        assert m.jitter_std == 0.0

    def test_jitter_std(self):
        m = _stream_metrics([0.1, 0.3], [0, 0])
        assert m.jitter_std == pytest.approx(0.1)


class TestSimulationReport:
    def _report(self):
        streams = {
            0: _stream_metrics([0.1, 0.1], [0.0, 0.0]),
            1: _stream_metrics([0.3, 0.3], [0.02, 0.01]),
        }
        servers = {
            0: ServerMetrics(0, utilization=0.5, energy_joules=100.0,
                             frames_processed=4, uplink_mbps=3.0),
            1: ServerMetrics(1, utilization=0.2, energy_joules=60.0,
                             frames_processed=0, uplink_mbps=1.0),
        }
        return SimulationReport(
            horizon=10.0, streams=streams, servers=servers, total_flops=50.0
        )

    def test_mean_latency_across_streams(self):
        assert self._report().mean_latency == pytest.approx(0.2)

    def test_max_jitter_across_streams(self):
        assert self._report().max_jitter == pytest.approx(0.02)

    def test_total_bandwidth(self):
        assert self._report().total_bandwidth_mbps == pytest.approx(4.0)

    def test_total_power(self):
        assert self._report().total_power_watts == pytest.approx(16.0)

    def test_computation_rate(self):
        assert self._report().computation_tflops == pytest.approx(5.0)

    def test_completion_ratio(self):
        rep = self._report()
        assert rep.completion_ratio == pytest.approx(1.0)

    def test_empty_report(self):
        rep = SimulationReport(horizon=1.0, streams={}, servers={}, total_flops=0.0)
        assert np.isnan(rep.mean_latency)
        assert rep.max_jitter == 0.0
        assert rep.completion_ratio == 1.0
