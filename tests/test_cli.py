"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestInfo:
    def test_info_prints_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PaMO" in out and "ltc" in out


class TestOptimize:
    def test_random_method(self, capsys):
        rc = main(
            ["optimize", "--streams", "3", "--servers", "2", "--method", "random"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "true benefit" in out
        assert "stream" in out

    def test_jcab_method(self, capsys):
        assert main(["optimize", "--streams", "3", "--servers", "2",
                     "--method", "jcab"]) == 0

    def test_fact_with_explicit_bandwidths(self, capsys):
        rc = main(
            [
                "optimize", "--streams", "2", "--servers", "2",
                "--bandwidths", "10,30", "--method", "fact",
            ]
        )
        assert rc == 0
        assert "10.0" in capsys.readouterr().out

    def test_weighted_with_custom_weights(self, capsys):
        rc = main(
            [
                "optimize", "--streams", "2", "--servers", "2",
                "--weights", "1,2,0.5,1,1", "--method", "weighted",
            ]
        )
        assert rc == 0

    def test_bandwidth_count_mismatch_errors(self, capsys):
        rc = main(
            ["optimize", "--servers", "3", "--bandwidths", "10,20",
             "--method", "random"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_method_errors(self, capsys):
        rc = main(["optimize", "--method", "skynet"])
        assert rc == 2


class TestFigure:
    def test_fig4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 jitter" in out

    def test_fig3_quick(self, capsys):
        assert main(["figure", "3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front size" in out

    def test_fig9_quick(self, capsys):
        assert main(["figure", "9", "--quick"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_output_flag_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.json"
        assert main(["figure", "4", "--output", str(out_path)]) == 0
        assert out_path.exists()
        from repro.bench import load_results

        data = load_results(out_path)
        assert "algorithm1_jitter" in data
