"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestInfo:
    def test_info_prints_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PaMO" in out and "ltc" in out


class TestOptimize:
    def test_random_method(self, capsys):
        rc = main(
            ["optimize", "--streams", "3", "--servers", "2", "--method", "random"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "true benefit" in out
        assert "stream" in out

    def test_jcab_method(self, capsys):
        assert main(["optimize", "--streams", "3", "--servers", "2",
                     "--method", "jcab"]) == 0

    def test_fact_with_explicit_bandwidths(self, capsys):
        rc = main(
            [
                "optimize", "--streams", "2", "--servers", "2",
                "--bandwidths", "10,30", "--method", "fact",
            ]
        )
        assert rc == 0
        assert "10.0" in capsys.readouterr().out

    def test_weighted_with_custom_weights(self, capsys):
        rc = main(
            [
                "optimize", "--streams", "2", "--servers", "2",
                "--weights", "1,2,0.5,1,1", "--method", "weighted",
            ]
        )
        assert rc == 0

    def test_bandwidth_count_mismatch_errors(self, capsys):
        rc = main(
            ["optimize", "--servers", "3", "--bandwidths", "10,20",
             "--method", "random"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_method_errors(self, capsys):
        rc = main(["optimize", "--method", "skynet"])
        assert rc == 2
        assert "unknown scheduler" in capsys.readouterr().err


class TestTelemetry:
    def test_pamo_alias_emits_iteration_records(self, capsys, tmp_path):
        """`repro pamo --telemetry out.jsonl` writes per-BO-iteration JSONL."""
        import json

        path = tmp_path / "run.jsonl"
        rc = main(
            ["pamo", "--streams", "2", "--servers", "2",
             "--telemetry", str(path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry events written to" in out

        records = [
            json.loads(line) for line in path.read_text().strip().splitlines()
        ]
        assert records, "telemetry log is empty"
        iters = [r for r in records if r["event"] == "bo.iteration"]
        assert iters, "no bo.iteration records emitted"
        for i, rec in enumerate(iters, start=1):
            assert rec["iteration"] == i
            assert rec["batch_size"] >= 1
            assert isinstance(rec["batch_benefit"], float)
            assert isinstance(rec["incumbent_benefit"], float)
            assert rec["t_iteration_s"] > 0
            assert "counters" in rec
        done = [r for r in records if r["event"] == "optimize.done"]
        assert len(done) == 1
        assert done[0]["method"] == "PaMO"
        assert done[0]["outcome"]["decision"]["method"] == "PaMO"

    def test_profile_flag_prints_top_functions(self, capsys):
        rc = main(
            ["optimize", "--streams", "2", "--servers", "2",
             "--method", "random", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "top functions" in out

    def test_telemetry_disabled_after_run(self, tmp_path):
        from repro.obs import telemetry

        main(
            ["optimize", "--streams", "2", "--servers", "2", "--method",
             "random", "--telemetry", str(tmp_path / "t.jsonl")]
        )
        assert not telemetry.enabled


class TestFigure:
    def test_fig4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 jitter" in out

    def test_fig3_quick(self, capsys):
        assert main(["figure", "3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front size" in out

    def test_fig9_quick(self, capsys):
        assert main(["figure", "9", "--quick"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_output_flag_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.json"
        assert main(["figure", "4", "--output", str(out_path)]) == 0
        assert out_path.exists()
        from repro.bench import load_results

        data = load_results(out_path)
        assert "algorithm1_jitter" in data

    def test_telemetry_summary_embedded_in_output(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.json"
        tel_path = tmp_path / "fig4.jsonl"
        rc = main(
            ["figure", "4", "--output", str(out_path),
             "--telemetry", str(tel_path)]
        )
        assert rc == 0
        from repro.bench import load_results

        data = load_results(out_path)
        assert "algorithm1_jitter" in data  # figure keys stay top-level
        assert "_telemetry" in data
        assert "spans" in data["_telemetry"]
        assert tel_path.exists()


class TestBench:
    def test_bench_writes_records_and_table(self, capsys, tmp_path):
        rc = main(
            ["bench", "gp_update", "assignment_cache", "--profile", "smoke",
             "--output-dir", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gp_update" in out and "speedup" in out
        assert (tmp_path / "BENCH_gp_update.json").exists()
        assert (tmp_path / "BENCH_assignment_cache.json").exists()

    def test_bench_unknown_name_errors(self, capsys, tmp_path):
        rc = main(["bench", "warp_drive", "--output-dir", str(tmp_path)])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bench_check_gate(self, capsys, tmp_path):
        base_dir = tmp_path / "base"
        rc = main(
            ["bench", "assignment_cache", "--profile", "smoke",
             "--output-dir", str(base_dir)]
        )
        assert rc == 0
        rc = main(
            ["bench", "assignment_cache", "--profile", "smoke",
             "--output-dir", str(tmp_path), "--check", str(base_dir),
             "--slack", "10.0"]
        )
        assert rc == 0
        assert "within" in capsys.readouterr().out

    def test_bench_check_missing_baseline_fails(self, capsys, tmp_path):
        rc = main(
            ["bench", "gp_update", "--profile", "smoke",
             "--output-dir", str(tmp_path), "--check", str(tmp_path / "void")]
        )
        assert rc == 1
        assert "no baseline" in capsys.readouterr().err
