"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo import eubo_closed_form
from repro.core import ConfigSpace, EVAProblem, make_preference
from repro.gp import GPRegressor
from repro.moo import hypervolume
from repro.utils import normalize_minmax


# ---------------------------------------------------------------------------
# EUBO: E[max(g1, g2)] >= max(E[g1], E[g2]) (Jensen) and monotone in means.
# ---------------------------------------------------------------------------
@st.composite
def bivariate_normal(draw):
    mu = np.array([draw(st.floats(-5, 5)), draw(st.floats(-5, 5))])
    s1 = draw(st.floats(0.01, 3.0))
    s2 = draw(st.floats(0.01, 3.0))
    rho = draw(st.floats(-0.95, 0.95))
    cov = np.array([[s1**2, rho * s1 * s2], [rho * s1 * s2, s2**2]])
    return mu, cov


class TestEuboProperties:
    @given(bivariate_normal())
    @settings(max_examples=80, deadline=None)
    def test_exceeds_max_of_means(self, mc):
        mu, cov = mc
        assert eubo_closed_form(mu, cov) >= max(mu) - 1e-9

    @given(bivariate_normal(), st.floats(0.01, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_mean_shift(self, mc, shift):
        mu, cov = mc
        base = eubo_closed_form(mu, cov)
        shifted = eubo_closed_form(mu + shift, cov)
        assert shifted == pytest.approx(base + shift, abs=1e-9)


# ---------------------------------------------------------------------------
# GP regression: posterior contracts as data grows; mean interpolates.
# ---------------------------------------------------------------------------
class TestGPProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_posterior_variance_shrinks_with_data(self, seed):
        gen = np.random.default_rng(seed)
        x = np.sort(gen.uniform(0, 5, 20)).reshape(-1, 1)
        y = np.sin(x[:, 0])
        # normalize_y=False: y-standardization rescales the posterior by
        # the subset's std, which would break the raw comparison
        gp_small = GPRegressor(normalize_y=False).fit(x[:6], y[:6], optimize=False)
        gp_big = GPRegressor(normalize_y=False).fit(x, y, optimize=False)
        probe = np.array([[2.5]])
        _, v_small = gp_small.predict(probe)
        _, v_big = gp_big.predict(probe)
        assert v_big[0] <= v_small[0] + 1e-9


# ---------------------------------------------------------------------------
# Hypervolume: monotone under adding points; invariant to duplicates.
# ---------------------------------------------------------------------------
class TestHypervolumeProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 0.9), st.floats(0, 0.9)),
            min_size=1,
            max_size=10,
        ),
        st.tuples(st.floats(0, 0.9), st.floats(0, 0.9)),
    )
    @settings(max_examples=60, deadline=None)
    def test_adding_point_never_decreases(self, pts, extra):
        front = np.array(pts, dtype=float)
        ref = np.array([1.0, 1.0])
        hv1 = hypervolume(front, ref)
        hv2 = hypervolume(np.vstack([front, np.array(extra)]), ref)
        assert hv2 >= hv1 - 1e-12

    @given(
        st.lists(
            st.tuples(st.floats(0, 0.9), st.floats(0, 0.9)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_duplicates_do_not_change_volume(self, pts):
        front = np.array(pts, dtype=float)
        ref = np.array([1.0, 1.0])
        assert hypervolume(np.vstack([front, front]), ref) == pytest.approx(
            hypervolume(front, ref)
        )


# ---------------------------------------------------------------------------
# Benefit (Eq. 13): utopia is the unique maximizer; translation-invariant
# under the normalization bounds.
# ---------------------------------------------------------------------------
class TestBenefitProperties:
    @given(st.lists(st.floats(0.1, 5.0), min_size=5, max_size=5), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_utopia_maximizes_benefit(self, weights, seed):
        problem = EVAProblem(
            n_streams=2,
            bandwidths_mbps=[10.0, 20.0],
            config_space=ConfigSpace(
                resolutions=(300.0, 900.0, 2000.0), fps_values=(1.0, 10.0, 30.0)
            ),
        )
        pref = make_preference(problem, weights=weights)
        u_val = pref.value(pref.utopia)
        r, s = problem.sample_decision(rng=seed)
        assert pref.value(problem.evaluate(r, s)) <= u_val + 1e-12

    @given(
        st.lists(st.floats(-10, 10), min_size=3, max_size=3),
        st.floats(0.1, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_normalize_minmax_bounds(self, vals, span):
        lo = np.array([-10.0, -10.0, -10.0])
        hi = lo + span
        out = normalize_minmax(np.array(vals), lo, hi)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


# ---------------------------------------------------------------------------
# EVAProblem: evaluation is deterministic and permutation-covariant in
# the stream order for symmetric aggregates.
# ---------------------------------------------------------------------------
class TestProblemProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_evaluate_deterministic(self, seed):
        problem = EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])
        r, s = problem.sample_decision(rng=seed)
        y1 = problem.evaluate(r, s)
        y2 = problem.evaluate(r, s)
        np.testing.assert_array_equal(y1, y2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_symmetric_objectives_permutation_invariant(self, seed):
        problem = EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])
        gen = np.random.default_rng(seed)
        r, s = problem.sample_decision(gen)
        perm = gen.permutation(3)
        y1 = problem.evaluate(r, s)
        y2 = problem.evaluate(r[perm], s[perm])
        # acc/net/com/eng aggregate symmetrically over streams
        np.testing.assert_allclose(y1[1:], y2[1:], rtol=1e-12)
