"""Tests for the pairwise preference GP (Laplace approximation)."""

import numpy as np
import pytest

from repro.gp import ComparisonData, PreferenceGP
from repro.gp.kernels import RBFKernel


def _make_data(n_items=12, n_pairs=40, d=2, seed=0, utility=None):
    """Items on [0,1]^d with comparisons from a known utility."""
    gen = np.random.default_rng(seed)
    items = gen.uniform(0, 1, (n_items, d))
    if utility is None:
        utility = lambda y: -np.sum((y - 0.5) ** 2, axis=-1)  # peak at center
    data = ComparisonData(items=items)
    for _ in range(n_pairs):
        i, j = gen.choice(n_items, 2, replace=False)
        ui = utility(items[i])
        uj = utility(items[j])
        if ui >= uj:
            data.add_comparison(i, j)
        else:
            data.add_comparison(j, i)
    return items, data, utility


class TestComparisonData:
    def test_pair_matrix(self):
        data = ComparisonData(items=np.zeros((3, 2)), pairs=[(0, 2)])
        a = data.pair_matrix()
        np.testing.assert_array_equal(a, [[1.0, 0.0, -1.0]])

    def test_self_pair_raises(self):
        with pytest.raises(ValueError):
            ComparisonData(items=np.zeros((3, 2)), pairs=[(1, 1)])

    def test_out_of_range_raises(self):
        data = ComparisonData(items=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            data.add_comparison(0, 5)

    def test_add_items_returns_indices(self):
        data = ComparisonData(items=np.zeros((2, 2)))
        idx = data.add_items(np.ones((3, 2)))
        np.testing.assert_array_equal(idx, [2, 3, 4])
        assert data.n_items == 5

    def test_add_items_dim_mismatch(self):
        data = ComparisonData(items=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            data.add_items(np.ones((1, 3)))


class TestPreferenceGPFit:
    def test_fit_orders_items_correctly(self):
        items, data, utility = _make_data(n_pairs=60)
        gp = PreferenceGP().fit(data)
        g = gp.utilities()
        true_u = utility(items)
        # Kendall-style check: most pairs ordered consistently
        n_ok = n_tot = 0
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                if abs(true_u[i] - true_u[j]) < 0.05:
                    continue
                n_tot += 1
                n_ok += (g[i] > g[j]) == (true_u[i] > true_u[j])
        assert n_ok / n_tot > 0.8

    def test_winner_of_every_comparison_scores_higher_on_average(self):
        _, data, _ = _make_data(n_pairs=50, seed=3)
        gp = PreferenceGP().fit(data)
        g = gp.utilities()
        margins = [g[w] - g[l] for w, l in data.pairs]
        assert np.mean(margins) > 0

    def test_no_pairs_raises(self):
        with pytest.raises(ValueError):
            PreferenceGP().fit(ComparisonData(items=np.zeros((3, 2))))

    def test_custom_kernel_used(self):
        items, data, _ = _make_data()
        kern = RBFKernel(np.full(2, 0.5), outputscale=1.0)
        gp = PreferenceGP(kernel=kern).fit(data)
        assert gp.kernel is kern

    def test_invalid_noise_scale(self):
        with pytest.raises(ValueError):
            PreferenceGP(noise_scale=0.0)


class TestPreferenceGPPredict:
    def test_predict_mean_var_shapes(self):
        items, data, _ = _make_data()
        gp = PreferenceGP().fit(data)
        y = np.random.default_rng(0).uniform(0, 1, (5, 2))
        mean, var = gp.predict(y)
        assert mean.shape == (5,) and var.shape == (5,)
        assert np.all(var > 0)

    def test_predict_cov_psd(self):
        items, data, _ = _make_data()
        gp = PreferenceGP().fit(data)
        y = np.random.default_rng(1).uniform(0, 1, (6, 2))
        _, cov = gp.predict(y, return_cov=True)
        assert np.linalg.eigvalsh(cov).min() > -1e-8

    def test_predict_generalizes_utility_ordering(self):
        items, data, utility = _make_data(n_items=15, n_pairs=80, seed=2)
        gp = PreferenceGP().fit(data)
        center = np.array([[0.5, 0.5]])
        corner = np.array([[0.0, 0.0]])
        m_center, _ = gp.predict(center)
        m_corner, _ = gp.predict(corner)
        assert m_center[0] > m_corner[0]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PreferenceGP().predict(np.zeros((1, 2)))

    def test_pair_probability_bounds_and_direction(self):
        items, data, _ = _make_data(n_pairs=80, seed=5)
        gp = PreferenceGP().fit(data)
        center = np.array([[0.5, 0.5]])
        corner = np.array([[0.05, 0.05]])
        p = gp.predict_pair_probability(center, corner)
        assert 0.5 < p[0] <= 1.0
        p_rev = gp.predict_pair_probability(corner, center)
        assert p_rev[0] == pytest.approx(1 - p[0], abs=1e-6)

    def test_sample_posterior_shape(self):
        items, data, _ = _make_data()
        gp = PreferenceGP().fit(data)
        s = gp.sample_posterior(items[:4], n_samples=8, rng=0)
        assert s.shape == (8, 4)

    def test_more_comparisons_reduce_uncertainty(self):
        items, small, utility = _make_data(n_pairs=5, seed=7)
        _, big, _ = _make_data(n_pairs=120, seed=7)
        gp_small = PreferenceGP().fit(small)
        gp_big = PreferenceGP().fit(big)
        probe = items[:8]
        _, v_small = gp_small.predict(probe)
        _, v_big = gp_big.predict(probe)
        assert np.mean(v_big) < np.mean(v_small)
