"""Tests for the shared kernel/Cholesky cache and its GP integrations."""

import numpy as np
import pytest

from repro.gp import GPRegressor, Matern52Kernel, RBFKernel
from repro.gp import cache as gp_cache
from repro.gp.cache import CholeskyCache, cache_key, chol_cache
from repro.gp.preference import ComparisonData, PreferenceGP


@pytest.fixture(autouse=True)
def _fresh_cache():
    gp_cache.configure(enabled=True)
    gp_cache.clear()
    yield
    gp_cache.configure(enabled=True)
    gp_cache.clear()


class TestCholeskyCache:
    def test_miss_then_hit(self):
        cache = CholeskyCache(maxsize=4)
        calls = []
        out1 = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        out2 = cache.get_or_compute("k", lambda: calls.append(1) or 43)
        assert out1 == out2 == 42
        assert len(calls) == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1, "hit_rate": 0.5}

    def test_lru_eviction_order(self):
        cache = CholeskyCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: -1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b (least recent)
        assert cache.get_or_compute("a", lambda: -1) == 1
        assert cache.get_or_compute("b", lambda: 99) == 99  # recomputed

    def test_disabled_computes_every_time_and_stores_nothing(self):
        cache = CholeskyCache()
        cache.enabled = False
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        cache.get_or_compute("k", lambda: calls.append(1) or 2)
        assert len(calls) == 2
        assert len(cache) == 0

    def test_put_respects_disabled(self):
        cache = CholeskyCache()
        cache.enabled = False
        cache.put("k", 1)
        assert len(cache) == 0

    def test_clear_resets_counts(self):
        cache = CholeskyCache()
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0, "hit_rate": 0.0}

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            CholeskyCache(maxsize=0)
        with pytest.raises(ValueError):
            gp_cache.configure(maxsize=0)


class TestCacheKey:
    def setup_method(self):
        self.x = np.arange(6.0).reshape(3, 2)

    def test_same_inputs_same_key(self):
        k1 = Matern52Kernel(np.array([0.3, 0.3]))
        k2 = Matern52Kernel(np.array([0.3, 0.3]))
        assert cache_key(k1, 1e-3, self.x) == cache_key(k2, 1e-3, self.x)

    def test_hyperparams_change_key(self):
        k1 = Matern52Kernel(np.array([0.3, 0.3]))
        k2 = Matern52Kernel(np.array([0.4, 0.3]))
        assert cache_key(k1, 1e-3, self.x) != cache_key(k2, 1e-3, self.x)

    def test_kernel_family_changes_key(self):
        k1 = Matern52Kernel(np.array([0.3, 0.3]))
        k2 = RBFKernel(np.array([0.3, 0.3]))
        assert cache_key(k1, 1e-3, self.x) != cache_key(k2, 1e-3, self.x)

    def test_noise_and_data_change_key(self):
        k = Matern52Kernel(np.array([0.3, 0.3]))
        base = cache_key(k, 1e-3, self.x)
        assert cache_key(k, 1e-2, self.x) != base
        assert cache_key(k, 1e-3, self.x + 1.0) != base

    def test_tag_partitions_entries(self):
        k = Matern52Kernel(np.array([0.3, 0.3]))
        assert cache_key(k, 1e-3, self.x, tag="reg") != cache_key(
            k, 1e-3, self.x, tag="pref"
        )


class TestRegressorCacheIntegration:
    def test_refit_same_data_hits_cache(self, rng):
        x = rng.uniform(0, 1, (20, 2))
        y = np.sin(x[:, 0]) + x[:, 1]
        gp = GPRegressor(Matern52Kernel(np.full(2, 0.3)), noise=1e-3)
        gp.fit(x, y, optimize=False)
        misses = chol_cache.misses
        gp.fit(x, y + 1.0, optimize=False)  # same K: y does not enter the key
        assert chol_cache.hits >= 1
        assert chol_cache.misses == misses
        # posterior is still correct for the NEW y
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y + 1.0, atol=0.2)

    def test_cached_and_uncached_fits_identical(self, rng):
        x = rng.uniform(0, 1, (15, 2))
        y = np.cos(2 * x[:, 0]) * x[:, 1]
        probe = rng.uniform(0, 1, (6, 2))

        gp1 = GPRegressor(Matern52Kernel(np.full(2, 0.3)), noise=1e-3)
        gp1.fit(x, y, optimize=False)
        gp1.fit(x, y, optimize=False)  # second fit reads the cache
        m1, v1 = gp1.predict(probe)

        gp_cache.configure(enabled=False)
        gp2 = GPRegressor(Matern52Kernel(np.full(2, 0.3)), noise=1e-3)
        gp2.fit(x, y, optimize=False)
        m2, v2 = gp2.predict(probe)

        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(v1, v2)


class TestPreferenceCacheIntegration:
    def _data(self, rng, n_items=12, n_pairs=20):
        items = rng.uniform(0, 1, (n_items, 3))
        utility = items @ np.array([1.0, -0.5, 0.2])
        data = ComparisonData(items=items)
        for _ in range(n_pairs):
            i, j = rng.choice(n_items, 2, replace=False)
            w, l = (i, j) if utility[i] >= utility[j] else (j, i)
            data.add_comparison(int(w), int(l))
        return data

    def test_refit_after_new_comparison_hits_cache(self, rng):
        data = self._data(rng)
        model = PreferenceGP()
        model.fit(data)
        assert chol_cache.misses >= 1
        hits_before = chol_cache.hits
        data.add_comparison(0, 1)
        model.fit(data)  # same item set -> same K -> cache hit
        assert chol_cache.hits > hits_before

    def test_pair_probability_fast_matches_slow(self, rng):
        data = self._data(rng)
        model = PreferenceGP().fit(data)
        y1 = rng.uniform(0, 1, (8, 3))
        y2 = rng.uniform(0, 1, (8, 3))
        p_fast = model.predict_pair_probability(y1, y2, fast=True)
        p_slow = model.predict_pair_probability(y1, y2, fast=False)
        np.testing.assert_allclose(p_fast, p_slow, rtol=0, atol=1e-10)
        assert np.all((p_fast >= 0) & (p_fast <= 1))
