"""Tests for preference-GP hyperparameter cross-validation."""

import numpy as np
import pytest

from repro.gp import ComparisonData, cross_validate_preference


def _data(n_items=20, n_pairs=40, seed=0, noise=0.0):
    gen = np.random.default_rng(seed)
    items = gen.uniform(0, 1, (n_items, 3))
    utility = items @ np.array([1.0, -0.5, 2.0])
    data = ComparisonData(items=items)
    for _ in range(n_pairs):
        i, j = gen.choice(n_items, 2, replace=False)
        ui, uj = utility[i], utility[j]
        if noise > 0:
            ui += gen.normal(0, noise)
            uj += gen.normal(0, noise)
        data.add_comparison(i, j) if ui >= uj else data.add_comparison(j, i)
    return data, items, utility


class TestCrossValidatePreference:
    def test_returns_grid_member(self):
        data, _, _ = _data()
        ell, lam, score = cross_validate_preference(
            data, lengthscales=(0.5, 2.0), noise_scales=(0.05, 0.2), rng=0
        )
        assert ell in (0.5, 2.0)
        assert lam in (0.05, 0.2)
        assert np.isfinite(score)

    def test_score_is_valid_loglik(self):
        data, _, _ = _data()
        _, _, score = cross_validate_preference(data, rng=0)
        # log probability of a binary event: <= 0, and better than chance-ish
        assert score <= 0.0
        assert score > np.log(1e-9)

    def test_selected_model_beats_bad_hyperparams(self):
        data, items, utility = _data(n_pairs=60, seed=1)
        ell, lam, best_score = cross_validate_preference(
            data,
            lengthscales=(0.02, 1.5),
            noise_scales=(0.05,),
            n_folds=4,
            rng=0,
        )
        # tiny lengthscale cannot generalize across items; CV should
        # reject it in favor of the smooth model
        assert ell == 1.5

    def test_too_few_pairs_raises(self):
        data, _, _ = _data(n_pairs=2)
        with pytest.raises(ValueError):
            cross_validate_preference(data, n_folds=4)

    def test_deterministic_given_rng(self):
        data, _, _ = _data()
        a = cross_validate_preference(data, rng=7)
        b = cross_validate_preference(data, rng=7)
        assert a == b

    def test_noisy_comparisons_still_work(self):
        data, _, _ = _data(n_pairs=48, noise=0.3, seed=2)
        ell, lam, score = cross_validate_preference(data, rng=0)
        assert np.isfinite(score)
