"""Tests for exact GP regression."""

import numpy as np
import pytest

from repro.gp import GPRegressor, Matern52Kernel, RBFKernel


def _toy_1d(n=25, noise=0.01, seed=0):
    gen = np.random.default_rng(seed)
    x = np.sort(gen.uniform(0, 5, n)).reshape(-1, 1)
    y = np.sin(x[:, 0]) + gen.normal(0, noise, n)
    return x, y


class TestFitPredict:
    def test_interpolates_training_points(self):
        x, y = _toy_1d(noise=0.001)
        gp = GPRegressor().fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=0.05)

    def test_predictive_variance_small_at_train_large_far(self):
        x, y = _toy_1d()
        gp = GPRegressor().fit(x, y)
        _, var_train = gp.predict(x[:1])
        _, var_far = gp.predict(np.array([[30.0]]))
        assert var_far[0] > var_train[0] * 5

    def test_generalization(self):
        x, y = _toy_1d(n=40)
        gp = GPRegressor().fit(x, y)
        x_test = np.linspace(0.2, 4.8, 20).reshape(-1, 1)
        mean, _ = gp.predict(x_test)
        np.testing.assert_allclose(mean, np.sin(x_test[:, 0]), atol=0.15)

    def test_2d_input(self, rng):
        x = rng.uniform(-1, 1, (40, 2))
        y = x[:, 0] ** 2 + 0.5 * x[:, 1]
        gp = GPRegressor().fit(x, y)
        mean, _ = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(0.5, abs=0.15)

    def test_return_cov_matches_var(self):
        x, y = _toy_1d()
        gp = GPRegressor().fit(x, y)
        xt = np.array([[1.0], [2.0]])
        _, var = gp.predict(xt)
        _, cov = gp.predict(xt, return_cov=True)
        np.testing.assert_allclose(np.diag(cov), var, rtol=1e-6, atol=1e-10)

    def test_include_noise_inflates_var(self):
        x, y = _toy_1d(noise=0.1)
        gp = GPRegressor().fit(x, y)
        _, v0 = gp.predict(x[:3])
        _, v1 = gp.predict(x[:3], include_noise=True)
        assert np.all(v1 > v0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            GPRegressor().predict(np.zeros((1, 1)))

    def test_mismatched_xy_raises(self):
        with pytest.raises(ValueError):
            GPRegressor().fit(np.zeros((3, 1)), np.zeros(4))

    def test_kernel_dim_mismatch_raises(self):
        gp = GPRegressor(RBFKernel([1.0, 1.0]))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 1)), np.zeros(3))

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GPRegressor(noise=0.0)


class TestHyperparameterFitting:
    def test_mll_improves_with_optimization(self):
        x, y = _toy_1d(n=30)
        gp_raw = GPRegressor(Matern52Kernel([3.0], outputscale=0.1), noise=0.5)
        gp_raw.fit(x, y, optimize=False)
        mll_raw = gp_raw.log_marginal_likelihood()
        gp_opt = GPRegressor(Matern52Kernel([3.0], outputscale=0.1), noise=0.5)
        gp_opt.fit(x, y, optimize=True)
        assert gp_opt.log_marginal_likelihood() >= mll_raw

    def test_noise_recovered_roughly(self):
        gen = np.random.default_rng(1)
        x = gen.uniform(0, 5, 80).reshape(-1, 1)
        sigma = 0.3
        y = np.sin(x[:, 0]) + gen.normal(0, sigma, 80)
        gp = GPRegressor().fit(x, y, n_restarts=3)
        # standardized-scale noise, convert back
        fitted_sigma = np.sqrt(gp.noise) * gp._y_std
        assert 0.1 < fitted_sigma < 0.7

    def test_fit_is_deterministic_given_rng(self):
        x, y = _toy_1d()
        g1 = GPRegressor().fit(x, y, rng=5)
        g2 = GPRegressor().fit(x, y, rng=5)
        m1, _ = g1.predict(np.array([[2.5]]))
        m2, _ = g2.predict(np.array([[2.5]]))
        assert m1[0] == m2[0]


class TestPosteriorSampling:
    def test_sample_shape(self):
        x, y = _toy_1d()
        gp = GPRegressor().fit(x, y)
        xt = np.linspace(0, 5, 7).reshape(-1, 1)
        s = gp.sample_posterior(xt, n_samples=16, rng=0)
        assert s.shape == (16, 7)

    def test_samples_center_on_mean(self):
        x, y = _toy_1d()
        gp = GPRegressor().fit(x, y)
        xt = np.array([[2.0]])
        s = gp.sample_posterior(xt, n_samples=4000, rng=0)
        mean, var = gp.predict(xt)
        assert np.mean(s) == pytest.approx(mean[0], abs=4 * np.sqrt(var[0] / 4000) + 1e-3)


class TestLogPredictiveDensity:
    def test_good_model_scores_higher_than_bad(self):
        x, y = _toy_1d(n=40)
        x_test = np.linspace(0.2, 4.8, 15).reshape(-1, 1)
        y_test = np.sin(x_test[:, 0])
        good = GPRegressor().fit(x, y)
        bad = GPRegressor().fit(x[:4], y[:4], optimize=False)
        assert good.log_predictive_density(x_test, y_test) > bad.log_predictive_density(
            x_test, y_test
        )

    def test_penalizes_wrong_targets(self):
        x, y = _toy_1d(n=30)
        gp = GPRegressor().fit(x, y)
        xt = np.array([[2.0], [3.0]])
        yt_true = np.sin(xt[:, 0])
        yt_wrong = yt_true + 5.0
        assert gp.log_predictive_density(xt, yt_true) > gp.log_predictive_density(
            xt, yt_wrong
        )

    def test_length_mismatch_raises(self):
        x, y = _toy_1d()
        gp = GPRegressor().fit(x, y)
        with pytest.raises(ValueError):
            gp.log_predictive_density(np.zeros((2, 1)), np.zeros(3))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GPRegressor().log_predictive_density(np.zeros((1, 1)), np.zeros(1))


class TestConditionOn:
    def test_extra_data_tightens_posterior(self):
        x, y = _toy_1d(n=10)
        gp = GPRegressor().fit(x, y)
        x_new = np.array([[2.5]])
        _, var_before = gp.predict(x_new)
        gp2 = gp.condition_on(x_new, np.sin(x_new[:, 0]))
        _, var_after = gp2.predict(x_new)
        assert var_after[0] < var_before[0]

    def test_original_unchanged(self):
        x, y = _toy_1d(n=10)
        gp = GPRegressor().fit(x, y)
        n_before = gp.n_train
        gp.condition_on(np.array([[9.0]]), np.array([0.0]))
        assert gp.n_train == n_before

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GPRegressor().condition_on(np.zeros((1, 1)), np.zeros(1))
