"""Tests for composite (sum/product) kernels."""

import numpy as np
import pytest

from repro.gp import (
    GPRegressor,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
)


@pytest.fixture
def xs(rng):
    return rng.normal(size=(7, 2))


def _pair():
    return RBFKernel([0.8, 1.2], outputscale=1.5), Matern52Kernel(
        [1.1, 0.7], outputscale=0.8
    )


class TestSumKernel:
    def test_value_is_sum(self, xs):
        a, b = _pair()
        k = SumKernel(a, b)
        np.testing.assert_allclose(k(xs), a(xs) + b(xs))

    def test_diag(self, xs):
        a, b = _pair()
        k = SumKernel(a, b)
        np.testing.assert_allclose(k.diag(xs), a.diag(xs) + b.diag(xs))

    def test_psd(self, xs):
        a, b = _pair()
        k = SumKernel(a, b)(xs)
        assert np.linalg.eigvalsh(k).min() > -1e-9

    def test_param_roundtrip(self):
        a, b = _pair()
        k = SumKernel(a, b)
        theta = k.get_log_params()
        assert theta.size == a.n_params + b.n_params
        k.set_log_params(theta + 0.1)
        np.testing.assert_allclose(k.get_log_params(), theta + 0.1)

    def test_gradient_matches_finite_diff(self, xs):
        a, b = _pair()
        k = SumKernel(a, b)
        grads = k.gradients(xs)
        theta0 = k.get_log_params()
        eps = 1e-6
        for j in range(k.n_params):
            tp = theta0.copy(); tp[j] += eps
            k.set_log_params(tp); kp = k(xs)
            tm = theta0.copy(); tm[j] -= eps
            k.set_log_params(tm); km = k(xs)
            k.set_log_params(theta0)
            np.testing.assert_allclose(grads[j], (kp - km) / (2 * eps), atol=1e-5)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            SumKernel(RBFKernel([1.0]), RBFKernel([1.0, 1.0]))


class TestProductKernel:
    def test_value_is_product(self, xs):
        a, b = _pair()
        k = ProductKernel(a, b)
        np.testing.assert_allclose(k(xs), a(xs) * b(xs))

    def test_psd(self, xs):
        a, b = _pair()
        k = ProductKernel(a, b)(xs)
        assert np.linalg.eigvalsh(k).min() > -1e-9

    def test_gradient_matches_finite_diff(self, xs):
        a, b = _pair()
        k = ProductKernel(a, b)
        grads = k.gradients(xs)
        theta0 = k.get_log_params()
        eps = 1e-6
        for j in range(k.n_params):
            tp = theta0.copy(); tp[j] += eps
            k.set_log_params(tp); kp = k(xs)
            tm = theta0.copy(); tm[j] -= eps
            k.set_log_params(tm); km = k(xs)
            k.set_log_params(theta0)
            np.testing.assert_allclose(grads[j], (kp - km) / (2 * eps), atol=1e-5)


class TestCompositeInRegression:
    def test_fit_predict_with_sum_kernel(self):
        gen = np.random.default_rng(0)
        x = gen.uniform(0, 5, (30, 1))
        y = np.sin(x[:, 0]) + 0.3 * np.sin(5 * x[:, 0])
        kern = SumKernel(RBFKernel([2.0]), RBFKernel([0.3], outputscale=0.3))
        gp = GPRegressor(kern).fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=0.2)

    def test_mll_optimization_works(self):
        gen = np.random.default_rng(1)
        x = gen.uniform(0, 5, (25, 1))
        y = np.sin(x[:, 0])
        kern = ProductKernel(RBFKernel([3.0]), Matern52Kernel([3.0]))
        gp = GPRegressor(kern, noise=0.5)
        gp.fit(x, y, optimize=True)
        assert gp.noise < 0.5  # fitted down toward the truth
