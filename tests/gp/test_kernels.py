"""Tests for covariance kernels: values, PSD-ness, analytic gradients."""

import numpy as np
import pytest

from repro.gp import Matern32Kernel, Matern52Kernel, RBFKernel

KERNELS = [RBFKernel, Matern52Kernel, Matern32Kernel]


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param(lengthscales=[0.7, 1.3], outputscale=2.0)


class TestKernelBasics:
    def test_diagonal_equals_outputscale(self, kernel, rng):
        x = rng.normal(size=(5, 2))
        k = kernel(x)
        np.testing.assert_allclose(np.diag(k), 2.0, rtol=1e-10)
        np.testing.assert_allclose(kernel.diag(x), 2.0)

    def test_symmetry(self, kernel, rng):
        x = rng.normal(size=(6, 2))
        k = kernel(x)
        np.testing.assert_allclose(k, k.T, atol=1e-12)

    def test_psd(self, kernel, rng):
        x = rng.normal(size=(10, 2))
        k = kernel(x)
        eig = np.linalg.eigvalsh(k)
        assert eig.min() > -1e-9

    def test_decay_with_distance(self, kernel):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0]])
        k = kernel(x)
        assert k[0, 1] > k[0, 2]

    def test_cross_covariance_shape(self, kernel, rng):
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(7, 2))
        assert kernel(a, b).shape == (4, 7)

    def test_log_param_roundtrip(self, kernel):
        theta = kernel.get_log_params()
        kernel.set_log_params(theta + 0.3)
        np.testing.assert_allclose(kernel.get_log_params(), theta + 0.3)

    def test_wrong_param_count_raises(self, kernel):
        with pytest.raises(ValueError):
            kernel.set_log_params(np.zeros(7))

    def test_wrong_dims_raises(self, kernel):
        with pytest.raises(ValueError):
            kernel(np.zeros((3, 5)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RBFKernel([-1.0])
        with pytest.raises(ValueError):
            RBFKernel([1.0], outputscale=0.0)


class TestAnalyticGradients:
    """Finite differences cross-check the hand-derived dK/d(log θ)."""

    @pytest.mark.parametrize("cls", KERNELS)
    def test_gradients_match_finite_diff(self, cls, rng):
        kern = cls(lengthscales=[0.8, 1.4], outputscale=1.7)
        x = rng.normal(size=(6, 2))
        grads = kern.gradients(x)
        theta0 = kern.get_log_params()
        eps = 1e-6
        for j in range(kern.n_params):
            tp = theta0.copy()
            tp[j] += eps
            kern.set_log_params(tp)
            k_plus = kern(x)
            tm = theta0.copy()
            tm[j] -= eps
            kern.set_log_params(tm)
            k_minus = kern(x)
            kern.set_log_params(theta0)
            fd = (k_plus - k_minus) / (2 * eps)
            np.testing.assert_allclose(grads[j], fd, atol=1e-5, rtol=1e-4)

    @pytest.mark.parametrize("cls", KERNELS)
    def test_gradient_count(self, cls):
        kern = cls(lengthscales=[1.0, 1.0, 1.0])
        assert len(kern.gradients(np.zeros((2, 3)))) == 4


class TestRBFSpecifics:
    def test_known_value(self):
        kern = RBFKernel([1.0], outputscale=1.0)
        k = kern(np.array([[0.0]]), np.array([[1.0]]))
        assert k[0, 0] == pytest.approx(np.exp(-0.5))

    def test_ard_anisotropy(self):
        kern = RBFKernel([0.1, 10.0])
        x0 = np.array([[0.0, 0.0]])
        near_d1 = np.array([[0.5, 0.0]])
        near_d2 = np.array([[0.0, 0.5]])
        # dim 1 has tiny lengthscale -> moving along it decays much more
        assert kern(x0, near_d1)[0, 0] < kern(x0, near_d2)[0, 0]


class TestMaternSmoothness:
    def test_matern52_value(self):
        kern = Matern52Kernel([1.0], outputscale=1.0)
        r = 1.0
        sr = np.sqrt(5)
        expected = (1 + sr + sr**2 / 3) * np.exp(-sr)
        assert kern(np.array([[0.0]]), np.array([[r]]))[0, 0] == pytest.approx(expected)

    def test_matern32_value(self):
        kern = Matern32Kernel([1.0], outputscale=1.0)
        sr = np.sqrt(3)
        expected = (1 + sr) * np.exp(-sr)
        assert kern(np.array([[0.0]]), np.array([[1.0]]))[0, 0] == pytest.approx(expected)
