"""Tests for multivariate-normal posterior sampling."""

import numpy as np
import pytest

from repro.gp import GPRegressor, sample_mvn, sample_posterior


class TestSampleMvn:
    def test_shape(self, rng):
        s = sample_mvn(np.zeros(3), np.eye(3), 10, rng=0)
        assert s.shape == (10, 3)

    def test_mean_and_cov_recovered(self):
        mean = np.array([1.0, -2.0])
        cov = np.array([[2.0, 0.6], [0.6, 1.0]])
        s = sample_mvn(mean, cov, 100_000, rng=0)
        np.testing.assert_allclose(s.mean(axis=0), mean, atol=0.03)
        np.testing.assert_allclose(np.cov(s.T), cov, atol=0.05)

    def test_deterministic_by_seed(self):
        a = sample_mvn(np.zeros(2), np.eye(2), 5, rng=3)
        b = sample_mvn(np.zeros(2), np.eye(2), 5, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_singular_cov_handled(self):
        v = np.array([[1.0, 2.0]])
        cov = v.T @ v  # rank 1
        s = sample_mvn(np.zeros(2), cov, 100, rng=0)
        # samples lie (nearly) on the rank-1 subspace: x2 = 2 x1
        np.testing.assert_allclose(s[:, 1], 2 * s[:, 0], atol=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sample_mvn(np.zeros(2), np.eye(3), 5)
        with pytest.raises(ValueError):
            sample_mvn(np.zeros(2), np.eye(2), 0)


class TestSamplePosterior:
    def test_wraps_model(self):
        gen = np.random.default_rng(0)
        x = gen.uniform(0, 5, (20, 1))
        y = np.sin(x[:, 0])
        gp = GPRegressor().fit(x, y)
        xt = np.array([[1.0], [2.0]])
        s = sample_posterior(gp, xt, 50, rng=0)
        assert s.shape == (50, 2)
        mean, _ = gp.predict(xt)
        np.testing.assert_allclose(s.mean(axis=0), mean, atol=0.2)
