"""Tests for the Thompson-sampling batch acquisition."""

import numpy as np
import pytest

from repro.bo import ThompsonSampling, make_acquisition


def _gaussian_sampler(means, stds):
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)

    def sampler(x, n_samples, rng):
        idx = np.asarray(x, dtype=float).reshape(len(x), -1)[:, 0].astype(int)
        return means[idx] + stds[idx] * rng.standard_normal((n_samples, len(idx)))

    return sampler


MEANS = np.array([0.0, 1.0, 3.0, 0.5])
STDS = np.array([0.05, 0.05, 0.05, 0.05])
POOL = np.arange(4, dtype=float).reshape(-1, 1)


class TestThompsonSampling:
    def test_factory(self):
        assert isinstance(make_acquisition("ts"), ThompsonSampling)

    def test_selects_clear_winner(self):
        s = _gaussian_sampler(MEANS, STDS)
        idx = ThompsonSampling(n_samples=16).select_batch(s, POOL, 1, rng=0)
        assert idx.tolist() == [2]

    def test_batch_slots_distinct(self):
        s = _gaussian_sampler(MEANS, STDS)
        idx = ThompsonSampling(n_samples=16).select_batch(s, POOL, 3, rng=0)
        assert len(set(idx.tolist())) == 3

    def test_exploration_under_uncertainty(self):
        """High-variance arms get picked sometimes across seeds."""
        means = np.array([1.0, 0.9])
        stds = np.array([0.01, 2.0])
        s = _gaussian_sampler(means, stds)
        pool = np.arange(2, dtype=float).reshape(-1, 1)
        picks = [
            ThompsonSampling(n_samples=4).select_batch(s, pool, 1, rng=k)[0]
            for k in range(40)
        ]
        assert 0 < sum(p == 1 for p in picks) < 40

    def test_evaluate_is_expected_max(self):
        s = _gaussian_sampler(MEANS, STDS)
        v = ThompsonSampling(n_samples=2048).evaluate(s, POOL[2:3], rng=0)
        assert v == pytest.approx(3.0, abs=0.05)

    def test_batch_size_validation(self):
        s = _gaussian_sampler(MEANS, STDS)
        with pytest.raises(ValueError):
            ThompsonSampling().select_batch(s, POOL, 0, rng=0)
        with pytest.raises(ValueError):
            ThompsonSampling().select_batch(s, POOL, 9, rng=0)

    def test_works_inside_bo_loop(self):
        from repro.bo import BOLoop
        from repro.gp import GPRegressor

        def truth(x):
            x = np.asarray(x, dtype=float).reshape(-1)
            return np.exp(-20 * (x - 0.6) ** 2)

        gen = np.random.default_rng(0)
        x0 = gen.uniform(0, 1, (5, 1))
        z0 = truth(x0)

        class Adapter:
            def __init__(self):
                self.x, self.z = x0, z0
                self.gp = GPRegressor().fit(self.x, self.z)

            def sample_benefit(self, x, n, rng):
                return self.gp.sample_posterior(np.atleast_2d(x), n, rng=rng)

            def benefit_mean(self, x):
                return self.gp.predict(np.atleast_2d(x))[0]

            def update(self, x, obs):
                self.x = np.vstack([self.x, np.atleast_2d(x)])
                self.z = np.concatenate([self.z, np.asarray(obs)])
                self.gp = GPRegressor().fit(self.x, self.z)

        loop = BOLoop(
            Adapter(),
            observe=lambda xb: truth(xb),
            benefit_of=lambda o: np.asarray(o),
            candidates=lambda rng: rng.uniform(0, 1, (20, 1)),
            acquisition=ThompsonSampling(n_samples=8),
            batch_size=2,
            max_iters=6,
            delta=1e-6,
            rng=0,
        )
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.best_z > 0.8
