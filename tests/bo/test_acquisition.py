"""Tests for the Monte-Carlo batch acquisition functions."""

import numpy as np
import pytest

from repro.bo import QEI, QNEI, QSR, QUCB, make_acquisition


def _gaussian_sampler(means, stds):
    """Benefit sampler for synthetic 1-D 'configurations'.

    x encodes an index into means/stds; the sampler returns independent
    normal draws — enough to validate acquisition arithmetic.
    """
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)

    def sampler(x, n_samples, rng):
        idx = np.asarray(x, dtype=float).reshape(len(x), -1)[:, 0].astype(int)
        z = rng.standard_normal((n_samples, len(idx)))
        return means[idx] + stds[idx] * z

    return sampler


MEANS = np.array([0.0, 1.0, 2.0, 0.5])
STDS = np.array([0.1, 0.1, 0.1, 2.0])
POOL = np.arange(4, dtype=float).reshape(-1, 1)


class TestQNEI:
    def test_prefers_high_mean_candidate(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QNEI(n_samples=256)
        obs_x = np.array([[0.0]])
        v_low = acq.evaluate(s, POOL[:1], observed_x=obs_x, rng=0)
        v_high = acq.evaluate(s, POOL[2:3], observed_x=obs_x, rng=0)
        assert v_high > v_low

    def test_no_incumbent_falls_back_to_mean(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QNEI(n_samples=512)
        v = acq.evaluate(s, POOL[2:3], rng=0)
        assert v == pytest.approx(2.0, abs=0.1)

    def test_incumbent_resampled_each_draw(self):
        """qNEI of the incumbent itself is small but positive (noise)."""
        s = _gaussian_sampler(MEANS, STDS)
        acq = QNEI(n_samples=512)
        obs_x = POOL[2:3]
        v = acq.evaluate(s, POOL[2:3], observed_x=obs_x, rng=0)
        assert 0 < v < 0.3

    def test_batch_value_geq_single(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QNEI(n_samples=512)
        obs_x = POOL[:1]
        v1 = acq.evaluate(s, POOL[1:2], observed_x=obs_x, rng=7)
        v2 = acq.evaluate(s, POOL[1:3], observed_x=obs_x, rng=7)
        assert v2 >= v1 - 0.05


class TestQEI:
    def test_improvement_over_best_observed(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QEI(n_samples=512)
        v = acq.evaluate(s, POOL[2:3], observed_z=np.array([1.0]), rng=0)
        assert v == pytest.approx(1.0, abs=0.1)

    def test_no_improvement_when_best_unbeatable(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QEI(n_samples=512)
        v = acq.evaluate(s, POOL[:1], observed_z=np.array([10.0]), rng=0)
        assert v == pytest.approx(0.0, abs=1e-6)

    def test_missing_observed_values(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QEI(n_samples=256)
        v = acq.evaluate(s, POOL[1:2], rng=0)
        assert v == pytest.approx(1.0, abs=0.15)


class TestQUCB:
    def test_uncertainty_bonus(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QUCB(n_samples=1024, beta=2.0)
        # index 3 has mean 0.5 but huge std; should beat index 1 (mean 1.0, tiny std)
        v_uncertain = acq.evaluate(s, POOL[3:4], rng=0)
        v_certain = acq.evaluate(s, POOL[1:2], rng=0)
        assert v_uncertain > v_certain

    def test_beta_zero_invalid(self):
        with pytest.raises(ValueError):
            QUCB(beta=0.0)


class TestQSR:
    def test_equals_expected_max(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QSR(n_samples=2048)
        v = acq.evaluate(s, POOL[:2], rng=0)
        # max of N(0,.1) and N(1,.1) ~ 1.0
        assert v == pytest.approx(1.0, abs=0.05)


class TestSelectBatch:
    def test_selects_best_single(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QSR(n_samples=256)
        idx = acq.select_batch(s, POOL, 1, rng=0)
        assert idx.tolist() == [2]

    def test_batch_is_diverse_under_qsr(self):
        s = _gaussian_sampler(MEANS, STDS)
        acq = QSR(n_samples=512)
        idx = acq.select_batch(s, POOL, 2, rng=0)
        assert len(set(idx.tolist())) == 2
        assert 2 in idx  # best mean always in batch

    def test_batch_size_too_large_raises(self):
        s = _gaussian_sampler(MEANS, STDS)
        with pytest.raises(ValueError):
            QSR().select_batch(s, POOL, 10, rng=0)

    def test_invalid_batch_size(self):
        s = _gaussian_sampler(MEANS, STDS)
        with pytest.raises(ValueError):
            QSR().select_batch(s, POOL, 0, rng=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("qNEI", QNEI), ("qei", QEI), ("QUCB", QUCB), ("qSr", QSR)]
    )
    def test_make_by_name(self, name, cls):
        assert isinstance(make_acquisition(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_acquisition("thompson")

    def test_min_samples(self):
        with pytest.raises(ValueError):
            QNEI(n_samples=1)
