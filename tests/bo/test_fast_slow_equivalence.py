"""Fast==slow equivalence for the vectorized BO paths.

Every vectorized hot path added for performance keeps its original
per-candidate / per-pair / from-scratch implementation behind a
``fast=False`` escape hatch.  These tests drive both paths on shared
inputs and seeds and require identical (or tolerance-tight) results —
the contract that makes the benchmarks meaningful.
"""

import numpy as np
import pytest

from repro.bo import eubo_closed_form, eubo_for_pairs
from repro.bo.acquisition import QEI, QNEI, QSR, QUCB
from repro.gp import cache as gp_cache
from repro.gp.preference import ComparisonData, PreferenceGP
from repro.outcomes.surrogate import OutcomeSurrogateBank


def _sampler(x, s, rng):
    mean = np.sin(3.0 * x[:, 0]) + 0.5 * x[:, 1]
    return mean[None, :] + 0.25 * rng.standard_normal((s, x.shape[0]))


class TestAcquisitionFastSlow:
    @pytest.mark.parametrize("acq_cls", [QNEI, QEI, QUCB, QSR])
    def test_select_batch_identical(self, acq_cls, rng):
        pool = rng.uniform(0, 1, (40, 2))
        observed_x = rng.uniform(0, 1, (8, 2))
        observed_z = rng.uniform(0, 1, 8)
        fast = acq_cls(n_samples=64, fast=True)
        slow = acq_cls(n_samples=64, fast=False)
        kw = dict(observed_x=observed_x, observed_z=observed_z, rng=123)
        idx_fast = fast.select_batch(_sampler, pool, 5, **kw)
        idx_slow = slow.select_batch(_sampler, pool, 5, **kw)
        np.testing.assert_array_equal(idx_fast, idx_slow)
        assert fast.last_batch_value == pytest.approx(
            slow.last_batch_value, rel=0, abs=1e-12
        )

    def test_select_batch_identical_without_incumbent(self, rng):
        pool = rng.uniform(0, 1, (30, 2))
        fast = QNEI(n_samples=32, fast=True)
        slow = QNEI(n_samples=32, fast=False)
        np.testing.assert_array_equal(
            fast.select_batch(_sampler, pool, 3, rng=7),
            slow.select_batch(_sampler, pool, 3, rng=7),
        )


class TestEuboFastSlow:
    def _model_and_items(self, rng, n_items=15):
        items = rng.uniform(0, 1, (n_items, 3))
        utility = items @ np.array([1.0, -0.3, 0.5])
        data = ComparisonData(items=items)
        for _ in range(2 * n_items):
            i, j = rng.choice(n_items, 2, replace=False)
            w, l = (i, j) if utility[i] >= utility[j] else (j, i)
            data.add_comparison(int(w), int(l))
        return PreferenceGP().fit(data), items

    def test_pairs_fast_matches_slow(self, rng):
        model, items = self._model_and_items(rng)
        pairs = [(i, j) for i in range(len(items)) for j in range(i + 1, len(items))]
        v_fast = eubo_for_pairs(model, items, pairs, fast=True)
        v_slow = eubo_for_pairs(model, items, pairs, fast=False)
        np.testing.assert_allclose(v_fast, v_slow, rtol=0, atol=1e-10)

    def test_batch_matches_scalar_closed_form(self, rng):
        model, items = self._model_and_items(rng)
        mean, cov = model.predict(items, return_cov=True)
        for i, j in [(0, 1), (2, 7), (3, 3)]:
            mu = np.array([mean[i], mean[j]])
            c = np.array([[cov[i, i], cov[i, j]], [cov[j, i], cov[j, j]]])
            scalar = eubo_closed_form(mu, c)
            vec = eubo_for_pairs(model, items, [(i, j)], fast=True)[0]
            assert vec == pytest.approx(scalar, rel=0, abs=1e-10)

    def test_empty_pairs(self, rng):
        model, items = self._model_and_items(rng)
        assert eubo_for_pairs(model, items, [], fast=True).shape == (0,)


class TestBankUpdateFastSlow:
    def _fitted_bank(self, rng, n=30):
        x = np.stack(
            [rng.uniform(200, 2000, n), rng.uniform(1, 30, n)], axis=1
        )
        y = rng.uniform(0.1, 1.0, (n, 5))
        return OutcomeSurrogateBank().fit(x, y, optimize=True, rng=rng), x, y

    def test_update_fast_matches_slow(self, rng):
        gp_cache.configure(enabled=False)
        try:
            import copy

            bank, x, y = self._fitted_bank(rng)
            x_new = np.stack(
                [rng.uniform(200, 2000, 6), rng.uniform(1, 30, 6)], axis=1
            )
            y_new = rng.uniform(0.1, 1.0, (6, 5))
            fast = copy.deepcopy(bank).update(x_new, y_new, fast=True)
            slow = copy.deepcopy(bank).update(x_new, y_new, fast=False)
            probe = np.stack(
                [rng.uniform(200, 2000, 10), rng.uniform(1, 30, 10)], axis=1
            )
            m_fast, v_fast = fast.predict_per_stream(probe)
            m_slow, v_slow = slow.predict_per_stream(probe)
            np.testing.assert_allclose(m_fast, m_slow, rtol=0, atol=1e-8)
            np.testing.assert_allclose(v_fast, v_slow, rtol=0, atol=1e-8)
        finally:
            gp_cache.configure(enabled=True)

    def test_update_preserves_hyperparameters(self, rng):
        bank, x, y = self._fitted_bank(rng)
        params_before = {
            name: gp.kernel.get_log_params().copy()
            for name, gp in bank.models.items()
        }
        x_new = np.stack([rng.uniform(200, 2000, 4), rng.uniform(1, 30, 4)], axis=1)
        bank.update(x_new, rng.uniform(0.1, 1.0, (4, 5)), fast=True)
        for name, gp in bank.models.items():
            np.testing.assert_array_equal(
                gp.kernel.get_log_params(), params_before[name]
            )
            assert gp.n_train == x.shape[0] + 4
