"""Tests for the closed-form EUBO criterion."""

import numpy as np
import pytest

from repro.bo import eubo_closed_form, select_eubo_pair
from repro.bo.eubo import eubo_for_pairs
from repro.gp import ComparisonData, PreferenceGP


class TestEuboClosedForm:
    def test_matches_monte_carlo(self, rng):
        mu = np.array([0.3, -0.2])
        cov = np.array([[1.0, 0.4], [0.4, 0.8]])
        exact = eubo_closed_form(mu, cov)
        samples = rng.multivariate_normal(mu, cov, size=200_000)
        mc = samples.max(axis=1).mean()
        assert exact == pytest.approx(mc, abs=5e-3)

    def test_degenerate_correlation(self):
        # perfectly correlated, equal variance -> max is just the larger mean
        mu = np.array([1.0, 0.0])
        cov = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert eubo_closed_form(mu, cov) == pytest.approx(1.0)

    def test_symmetric_zero_mean(self):
        # E[max(X, -X-ish)] for iid N(0,1): θ=√2, E[max]=θφ(0)=√2/√(2π)
        mu = np.zeros(2)
        cov = np.eye(2)
        expected = np.sqrt(2) * 1 / np.sqrt(2 * np.pi)
        assert eubo_closed_form(mu, cov) == pytest.approx(expected)

    def test_exceeds_individual_means(self):
        mu = np.array([0.5, 0.4])
        cov = np.array([[0.3, 0.0], [0.0, 0.3]])
        assert eubo_closed_form(mu, cov) > 0.5

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            eubo_closed_form(np.zeros(3), np.eye(3))


def _fitted_model(seed=0, n=12):
    gen = np.random.default_rng(seed)
    items = gen.uniform(0, 1, (n, 2))
    util = items[:, 0]  # utility = first coordinate
    data = ComparisonData(items=items)
    for _ in range(25):
        i, j = gen.choice(n, 2, replace=False)
        if util[i] >= util[j]:
            data.add_comparison(i, j)
        else:
            data.add_comparison(j, i)
    return items, PreferenceGP().fit(data)


class TestEuboForPairs:
    def test_values_finite_and_shaped(self):
        items, model = _fitted_model()
        pairs = [(0, 1), (2, 3), (4, 5)]
        vals = eubo_for_pairs(model, items, pairs)
        assert vals.shape == (3,)
        assert np.all(np.isfinite(vals))

    def test_pair_with_high_utility_item_scores_higher(self):
        items, model = _fitted_model(seed=1)
        g = model.utilities()
        best = int(np.argmax(g))
        worst = int(np.argmin(g))
        others = [i for i in range(len(items)) if i not in (best, worst)]
        v_best = eubo_for_pairs(model, items, [(best, others[0])])[0]
        v_worst = eubo_for_pairs(model, items, [(worst, others[0])])[0]
        assert v_best > v_worst


class TestSelectEuboPair:
    def test_returns_valid_distinct_pair(self):
        items, model = _fitted_model()
        i, j = select_eubo_pair(model, items, rng=0)
        assert i != j
        assert 0 <= i < len(items) and 0 <= j < len(items)

    def test_exclusion_respected(self):
        items, model = _fitted_model(n=4)
        all_pairs = {(i, j) for i in range(4) for j in range(i + 1, 4)}
        excluded = all_pairs - {(0, 1)}
        i, j = select_eubo_pair(model, items, rng=0, exclude=excluded)
        assert (min(i, j), max(i, j)) == (0, 1)

    def test_all_excluded_raises(self):
        items, model = _fitted_model(n=3)
        all_pairs = {(i, j) for i in range(3) for j in range(i + 1, 3)}
        with pytest.raises(ValueError):
            select_eubo_pair(model, items, rng=0, exclude=all_pairs)

    def test_too_few_items_raises(self):
        items, model = _fitted_model()
        with pytest.raises(ValueError):
            select_eubo_pair(model, items[:1])
