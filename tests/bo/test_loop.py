"""Tests for the BO driver on a synthetic benefit landscape."""

import numpy as np
import pytest

from repro.bo import BOLoop, QNEI, QSR
from repro.gp import GPRegressor


def _true_benefit(x):
    """Smooth 1-D landscape peaking at x = 0.7."""
    x = np.asarray(x, dtype=float).reshape(-1)
    return np.exp(-20 * (x - 0.7) ** 2) + 0.1 * np.sin(6 * x)


class GPAdapter:
    """Minimal SurrogateAdapter over a single GP of the benefit."""

    def __init__(self, x0, z0):
        self.x = np.atleast_2d(np.asarray(x0, dtype=float))
        self.z = np.asarray(z0, dtype=float)
        self.gp = GPRegressor().fit(self.x, self.z)
        self.n_updates = 0

    def sample_benefit(self, x, n_samples, rng):
        return self.gp.sample_posterior(np.atleast_2d(x), n_samples, rng=rng)

    def benefit_mean(self, x):
        mean, _ = self.gp.predict(np.atleast_2d(x))
        return mean

    def update(self, x, observations):
        self.x = np.vstack([self.x, np.atleast_2d(x)])
        self.z = np.concatenate([self.z, np.asarray(observations, dtype=float)])
        self.gp = GPRegressor().fit(self.x, self.z)
        self.n_updates += 1


def _make_loop(seed=0, acquisition=None, delta=0.01, max_iters=8, batch_size=2):
    gen = np.random.default_rng(seed)
    x0 = gen.uniform(0, 1, (5, 1))
    z0 = _true_benefit(x0)
    adapter = GPAdapter(x0, z0)
    loop = BOLoop(
        adapter,
        observe=lambda xb: _true_benefit(xb),
        benefit_of=lambda obs: np.asarray(obs),
        candidates=lambda rng: rng.uniform(0, 1, (24, 1)),
        acquisition=acquisition or QNEI(n_samples=64),
        batch_size=batch_size,
        delta=delta,
        max_iters=max_iters,
        rng=seed,
    )
    return adapter, loop, x0, z0


class TestBOLoop:
    def test_finds_near_optimum(self):
        adapter, loop, x0, z0 = _make_loop(seed=1, max_iters=10)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.best_z > 0.9  # true max ~1.05
        assert abs(res.best_x[0] - 0.7) < 0.15

    def test_improves_over_initial(self):
        adapter, loop, x0, z0 = _make_loop(seed=2)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.best_z >= float(np.max(z0))

    def test_adapter_updated_each_iteration(self):
        adapter, loop, x0, z0 = _make_loop(seed=0, max_iters=3, delta=1e-9)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert adapter.n_updates == res.n_iterations

    def test_convergence_flag_with_loose_delta(self):
        adapter, loop, x0, z0 = _make_loop(seed=0, delta=5.0, max_iters=10)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.converged
        assert res.n_iterations <= 2

    def test_max_iters_respected(self):
        adapter, loop, x0, z0 = _make_loop(seed=0, delta=1e-12, max_iters=3)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.n_iterations == 3
        assert not res.converged

    def test_history_recorded(self):
        adapter, loop, x0, z0 = _make_loop(seed=0, max_iters=4, delta=1e-12)
        res = loop.run(initial_x=x0, initial_z=z0)
        assert len(res.history_z) == res.n_iterations

    def test_runs_without_warm_start(self):
        adapter, loop, _, _ = _make_loop(seed=3, max_iters=4)
        res = loop.run()
        assert np.isfinite(res.best_z)

    def test_mismatched_warm_start_raises(self):
        adapter, loop, x0, z0 = _make_loop()
        with pytest.raises(ValueError):
            loop.run(initial_x=x0, initial_z=z0[:2])

    def test_qsr_variant_also_works(self):
        adapter, loop, x0, z0 = _make_loop(seed=4, acquisition=QSR(n_samples=64))
        res = loop.run(initial_x=x0, initial_z=z0)
        assert res.best_z > 0.7

    def test_invalid_params(self):
        adapter, _, x0, z0 = _make_loop()
        with pytest.raises(ValueError):
            BOLoop(
                adapter,
                observe=lambda x: x,
                benefit_of=lambda o: o,
                candidates=lambda r: np.zeros((2, 1)),
                batch_size=0,
            )
        with pytest.raises(ValueError):
            BOLoop(
                adapter,
                observe=lambda x: x,
                benefit_of=lambda o: o,
                candidates=lambda r: np.zeros((2, 1)),
                delta=-0.1,
            )
