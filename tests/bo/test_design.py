"""Tests for initial designs."""

import numpy as np
import pytest

from repro.bo import grid_design, latin_hypercube, sobol_design

BOUNDS = np.array([[0.0, 1.0], [10.0, 20.0]])


class TestSobol:
    def test_shape_and_bounds(self):
        x = sobol_design(BOUNDS, 16, rng=0)
        assert x.shape == (16, 2)
        assert np.all(x[:, 0] >= 0) and np.all(x[:, 0] <= 1)
        assert np.all(x[:, 1] >= 10) and np.all(x[:, 1] <= 20)

    def test_deterministic(self):
        a = sobol_design(BOUNDS, 8, rng=3)
        b = sobol_design(BOUNDS, 8, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_non_power_of_two(self):
        x = sobol_design(BOUNDS, 10, rng=0)
        assert x.shape == (10, 2)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            sobol_design(BOUNDS, 0)


class TestLatinHypercube:
    def test_stratification(self):
        x = latin_hypercube(np.array([[0.0, 1.0]]), 10, rng=0)
        # exactly one point per decile
        bins = np.floor(x[:, 0] * 10).astype(int)
        assert sorted(bins.tolist()) == list(range(10))

    def test_shape(self):
        x = latin_hypercube(BOUNDS, 7, rng=1)
        assert x.shape == (7, 2)

    def test_bad_bounds_raises(self):
        with pytest.raises(ValueError):
            latin_hypercube(np.array([[1.0, 1.0]]), 5)


class TestGrid:
    def test_full_factorial(self):
        x = grid_design(BOUNDS, 3)
        assert x.shape == (9, 2)
        assert np.unique(x[:, 0]).size == 3

    def test_includes_corners(self):
        x = grid_design(BOUNDS, 2)
        corners = {(0.0, 10.0), (0.0, 20.0), (1.0, 10.0), (1.0, 20.0)}
        got = {tuple(row) for row in x}
        assert got == corners

    def test_min_points(self):
        with pytest.raises(ValueError):
            grid_design(BOUNDS, 1)
