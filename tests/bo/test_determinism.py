"""MC-acquisition determinism: rng-only randomness, bit-identical reruns.

The acquisition functions draw every base sample from the generator
threaded through the call — never from NumPy's legacy global state —
so a seeded BO run is exactly reproducible.  These tests pin that at
three levels: a source audit (no ``np.random.<legacy>`` calls anywhere
in the package), repeat-run bit-identity of a full :class:`BOLoop`,
and insensitivity of a seeded run to external global-state consumers.
"""

import re
from pathlib import Path

import numpy as np

import repro
from repro.bo import BOLoop, QNEI
from repro.gp import GPRegressor

SRC_ROOT = Path(repro.__file__).parent

#: legacy global-state API: np.random.<fn>( — anything except the
#: Generator construction helpers, which are rng-explicit by design
_ALLOWED = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
_NP_RANDOM_CALL = re.compile(r"np\.random\.(\w+)")


def test_no_module_level_np_random_in_package():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in _NP_RANDOM_CALL.finditer(line):
                if m.group(1) not in _ALLOWED:
                    offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "legacy np.random global-state usage found (thread an explicit "
        "Generator instead):\n" + "\n".join(offenders)
    )


def _true_benefit(x):
    x = np.asarray(x, dtype=float).reshape(-1)
    return np.exp(-20 * (x - 0.7) ** 2) + 0.1 * np.sin(6 * x)


class _GPAdapter:
    def __init__(self, x0, z0):
        self.x = np.atleast_2d(np.asarray(x0, dtype=float))
        self.z = np.asarray(z0, dtype=float)
        self.gp = GPRegressor().fit(self.x, self.z, rng=0)

    def sample_benefit(self, x, n_samples, rng):
        return self.gp.sample_posterior(np.atleast_2d(x), n_samples, rng=rng)

    def benefit_mean(self, x):
        mean, _ = self.gp.predict(np.atleast_2d(x))
        return mean

    def update(self, x, observations):
        self.x = np.vstack([self.x, np.atleast_2d(x)])
        self.z = np.concatenate([self.z, np.asarray(observations, dtype=float)])
        self.gp = GPRegressor().fit(self.x, self.z, rng=0)


def _run_loop(seed: int):
    gen = np.random.default_rng(seed)
    x0 = gen.uniform(0, 1, (5, 1))
    z0 = _true_benefit(x0)
    loop = BOLoop(
        _GPAdapter(x0, z0),
        observe=lambda xb: _true_benefit(xb),
        benefit_of=lambda obs: np.asarray(obs),
        candidates=lambda rng: rng.uniform(0, 1, (16, 1)),
        acquisition=QNEI(n_samples=32),
        batch_size=2,
        delta=1e-9,
        n_iterations=4,
        rng=seed,
    )
    return loop.run(initial_x=x0, initial_z=z0)


class TestBitIdenticalReruns:
    def test_boloop_repeat_run_bit_identical(self):
        a = _run_loop(seed=7)
        b = _run_loop(seed=7)
        assert a.best_z == b.best_z  # exact, not approx
        np.testing.assert_array_equal(a.best_x, b.best_x)
        np.testing.assert_array_equal(a.history_z, b.history_z)
        assert a.n_iterations == b.n_iterations

    def test_seeded_run_immune_to_global_state(self):
        a = _run_loop(seed=3)
        # perturb the legacy global stream between runs; a clean
        # rng-threaded implementation cannot see it
        np.random.seed(12345)
        np.random.rand(1000)
        b = _run_loop(seed=3)
        assert a.best_z == b.best_z
        np.testing.assert_array_equal(a.history_z, b.history_z)

    def test_different_seeds_diverge(self):
        a = _run_loop(seed=0)
        b = _run_loop(seed=1)
        # sanity: the seed actually reaches the sampling path
        assert not np.array_equal(a.best_x, b.best_x) or a.best_z != b.best_z


class TestAcquisitionSharedSamples:
    def test_select_batch_bit_identical_across_calls(self):
        gen_pool = np.random.default_rng(0)
        pool = gen_pool.uniform(0, 1, (32, 2))

        def sampler(x, s, rng):
            mean = np.sin(3 * x[:, 0])
            return mean[None, :] + 0.2 * rng.standard_normal((s, x.shape[0]))

        acq = QNEI(n_samples=64)
        idx1 = acq.select_batch(sampler, pool, 4, rng=42)
        v1 = acq.last_batch_value
        idx2 = acq.select_batch(sampler, pool, 4, rng=42)
        np.testing.assert_array_equal(idx1, idx2)
        assert acq.last_batch_value == v1
