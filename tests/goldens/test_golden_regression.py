"""Golden regression: seeded end-to-end PaMO pinned to stored records.

Each case replays the full pipeline — problem construction, profiling,
preference learning, the BO loop on the fast GP/BO paths — with a
fixed seed and compares the incumbent benefit and final decision
against ``pamo_goldens.json``.  A mismatch means behavior drifted:
either an unintended side effect (fix the change) or an intentional
one (rerun ``benchmarks/regen_goldens.py`` and commit the refreshed
records with the change that caused them).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import make_problem, run_method
from repro.core import make_preference

GOLDEN_PATH = Path(__file__).parent / "pamo_goldens.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "golden",
    GOLDENS,
    ids=[f"{g['method']}-s{g['seed']}" for g in GOLDENS],
)
def test_seeded_run_matches_golden(golden):
    problem = make_problem(
        golden["n_streams"], golden["n_servers"], rng=golden["seed"]
    )
    preference = make_preference(problem)
    result = run_method(
        golden["method"], problem, preference, seed=golden["seed"], measured=False
    )

    assert result.true_benefit == pytest.approx(
        golden["true_benefit"], rel=1e-9, abs=1e-12
    )
    np.testing.assert_allclose(
        result.outcome, golden["outcome"], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        result.extras["resolutions"], golden["resolutions"], rtol=1e-9
    )
    np.testing.assert_allclose(result.extras["fps"], golden["fps"], rtol=1e-9)
    assert result.extras["n_iterations"] == golden["n_iterations"]
    assert result.extras["n_dm_queries"] == golden["n_dm_queries"]


def test_goldens_cover_both_pamo_variants():
    methods = {g["method"] for g in GOLDENS}
    assert {"PaMO", "PaMO+"} <= methods
