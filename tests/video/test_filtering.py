"""Tests for camera-side frame filtering and ROI encoding (§6 extensions)."""

import numpy as np
import pytest

from repro.video import (
    EncoderModel,
    FrameDifferenceFilter,
    SceneConfig,
    effective_stream_load,
    generate_clip,
    roi_bits_per_frame,
)


class TestFrameDifferenceFilter:
    def test_identical_frames_no_change(self):
        f = FrameDifferenceFilter()
        boxes = np.array([[0, 0, 10, 10]])
        assert f.change_score(boxes, boxes) == pytest.approx(0.0)

    def test_empty_to_empty_no_change(self):
        f = FrameDifferenceFilter()
        assert f.change_score(np.zeros((0, 4)), np.zeros((0, 4))) == 0.0

    def test_appearance_is_full_change(self):
        f = FrameDifferenceFilter()
        assert f.change_score(np.zeros((0, 4)), np.array([[0, 0, 10, 10]])) == 1.0

    def test_motion_increases_change(self):
        f = FrameDifferenceFilter()
        a = np.array([[0, 0, 10, 10]])
        small_move = np.array([[1, 0, 11, 10]])
        big_move = np.array([[50, 50, 60, 60]])
        assert f.change_score(a, big_move) > f.change_score(a, small_move)

    def test_first_frame_always_sent(self):
        clip = generate_clip(SceneConfig(speed=0.0), n_frames=10, rng=0)
        mask = FrameDifferenceFilter(threshold=0.99).select_frames(clip)
        assert mask[0]

    def test_static_scene_sends_little(self):
        clip = generate_clip(SceneConfig(speed=0.001, n_objects=5), n_frames=60, rng=0)
        f = FrameDifferenceFilter(threshold=0.3)
        assert f.effective_fps(clip) < 0.3 * clip.config.native_fps

    def test_fast_scene_sends_more_than_slow(self):
        slow = generate_clip(SceneConfig(speed=0.5, n_objects=8), n_frames=60, rng=0)
        fast = generate_clip(SceneConfig(speed=25.0, n_objects=8), n_frames=60, rng=0)
        f = FrameDifferenceFilter(threshold=0.25)
        assert f.effective_fps(fast) > f.effective_fps(slow)

    def test_threshold_zero_sends_everything(self):
        clip = generate_clip(n_frames=20, rng=0)
        mask = FrameDifferenceFilter(threshold=0.0).select_frames(clip)
        assert mask.all()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FrameDifferenceFilter(threshold=1.5)


class TestRoiBits:
    def test_empty_frame_background_only(self):
        enc = EncoderModel()
        bits = roi_bits_per_frame(np.zeros((0, 4)), 960.0, encoder=enc)
        assert bits == pytest.approx(0.08 * enc.bits_per_frame(960.0))

    def test_roi_cheaper_than_full_frame(self):
        enc = EncoderModel()
        boxes = np.array([[100, 100, 300, 300]])
        bits = roi_bits_per_frame(boxes, 960.0, encoder=enc)
        assert bits < enc.bits_per_frame(960.0)

    def test_full_coverage_equals_full_frame(self):
        enc = EncoderModel()
        boxes = np.array([[0, 0, 1920, 1080]])
        bits = roi_bits_per_frame(boxes, 960.0, encoder=enc, padding=0.0)
        assert bits == pytest.approx(enc.bits_per_frame(960.0))

    def test_more_objects_more_bits(self):
        one = roi_bits_per_frame(np.array([[0, 0, 100, 100]]), 960.0)
        many = roi_bits_per_frame(
            np.array([[0, 0, 100, 100], [500, 500, 700, 700]]), 960.0
        )
        assert many > one

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            roi_bits_per_frame(np.zeros((0, 4)), 960.0, background_quality=2.0)


class TestEffectiveStreamLoad:
    def test_no_reduction_passthrough(self):
        clip = generate_clip(n_frames=30, rng=0)
        enc = EncoderModel()
        fps, bits = effective_stream_load(clip, 960.0, 15.0, encoder=enc)
        assert fps == 15.0
        assert bits == pytest.approx(
            enc.bits_per_frame(960.0, texture=clip.config.texture)
        )

    def test_filter_caps_fps(self):
        clip = generate_clip(SceneConfig(speed=0.01), n_frames=60, rng=0)
        f = FrameDifferenceFilter(threshold=0.3)
        fps, _ = effective_stream_load(clip, 960.0, 30.0, frame_filter=f)
        assert fps < 30.0

    def test_roi_reduces_bits(self):
        clip = generate_clip(SceneConfig(n_objects=4, object_size=60), n_frames=20, rng=0)
        _, plain = effective_stream_load(clip, 960.0, 15.0)
        _, roi = effective_stream_load(clip, 960.0, 15.0, roi=True)
        assert roi < plain

    def test_combined_reduction_fits_scheduler_abstraction(self):
        """Reduced streams slot into the scheduling stack unchanged."""
        from repro.sched import PeriodicStream
        from repro.video.profiles import JETSON_NX_PROFILE

        clip = generate_clip(SceneConfig(speed=2.0), n_frames=40, rng=0)
        f = FrameDifferenceFilter(threshold=0.2)
        fps, bits = effective_stream_load(clip, 960.0, 30.0, frame_filter=f, roi=True)
        s = PeriodicStream(
            stream_id=0,
            fps=fps,
            resolution=960.0,
            processing_time=JETSON_NX_PROFILE.processing_time(960.0),
            bits_per_frame=bits,
        )
        assert s.load < JETSON_NX_PROFILE.processing_time(960.0) * 30.0
