"""Tests for the synthetic clip generator."""

import numpy as np
import pytest

from repro.video import SceneConfig, generate_clip


class TestSceneConfig:
    def test_defaults_valid(self):
        SceneConfig()

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            SceneConfig(n_objects=0)
        with pytest.raises(ValueError):
            SceneConfig(width=-1)


class TestGenerateClip:
    def test_frame_count(self):
        clip = generate_clip(n_frames=50, rng=0)
        assert clip.n_frames == 50

    def test_duration(self):
        clip = generate_clip(SceneConfig(native_fps=25.0), n_frames=50, rng=0)
        assert clip.duration == pytest.approx(2.0)

    def test_deterministic_by_seed(self):
        a = generate_clip(n_frames=10, rng=7)
        b = generate_clip(n_frames=10, rng=7)
        for fa, fb in zip(a.frames, b.frames):
            np.testing.assert_array_equal(fa, fb)

    def test_different_seeds_differ(self):
        a = generate_clip(n_frames=10, rng=1)
        b = generate_clip(n_frames=10, rng=2)
        assert not np.array_equal(a.frames[0], b.frames[0])

    def test_boxes_inside_frame(self):
        cfg = SceneConfig(width=640, height=480)
        clip = generate_clip(cfg, n_frames=30, rng=0)
        for frame in clip.frames:
            if frame.shape[0] == 0:
                continue
            assert np.all(frame[:, [0, 2]] >= 0) and np.all(frame[:, [0, 2]] <= 640)
            assert np.all(frame[:, [1, 3]] >= 0) and np.all(frame[:, [1, 3]] <= 480)

    def test_boxes_nondegenerate(self):
        clip = generate_clip(n_frames=30, rng=0)
        for frame in clip.frames:
            assert np.all(frame[:, 2] > frame[:, 0])
            assert np.all(frame[:, 3] > frame[:, 1])

    def test_motion_exists(self):
        cfg = SceneConfig(speed=10.0, n_objects=5)
        clip = generate_clip(cfg, n_frames=2, rng=0)
        # object count may change at borders; compare overall centroid drift
        c0 = clip.frames[0][:, :2].mean() if clip.frames[0].size else 0
        c1 = clip.frames[1][:, :2].mean() if clip.frames[1].size else 0
        assert c0 != c1

    def test_density_roughly_stationary(self):
        cfg = SceneConfig(n_objects=15)
        clip = generate_clip(cfg, n_frames=100, rng=3)
        first = np.mean([f.shape[0] for f in clip.frames[:20]])
        last = np.mean([f.shape[0] for f in clip.frames[-20:]])
        assert abs(first - last) < 6

    def test_mean_object_count(self):
        clip = generate_clip(SceneConfig(n_objects=8), n_frames=20, rng=0)
        assert 4 <= clip.mean_object_count() <= 9

    def test_invalid_frames_raises(self):
        with pytest.raises(ValueError):
            generate_clip(n_frames=0, rng=0)
