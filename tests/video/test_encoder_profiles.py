"""Tests for the encoder size model and device profiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.video import DeviceProfile, EncoderModel, JETSON_NX_PROFILE


class TestEncoderModel:
    def test_bits_quadratic_in_width(self):
        enc = EncoderModel(overhead_bits=0.0)
        b1 = enc.bits_per_frame(960)
        b2 = enc.bits_per_frame(1920)
        assert b2 / b1 == pytest.approx(4.0)

    def test_texture_scales_bits(self):
        enc = EncoderModel()
        assert enc.bits_per_frame(960, texture=2.0) > enc.bits_per_frame(960, texture=1.0)

    def test_bitrate_increases_with_fps(self):
        enc = EncoderModel()
        assert enc.bitrate(960, 30) > enc.bitrate(960, 10)

    def test_inter_gain_discounts_high_fps(self):
        enc = EncoderModel(inter_gain=0.3)
        # rate at 30fps < 3x rate at 10fps due to inter-frame gain
        assert enc.bitrate(960, 30) < 3 * enc.bitrate(960, 10)

    def test_default_full_config_near_15mbps(self):
        # Fig. 2 shows ~15 Mbps at (1920-2000 px, 30 fps).
        enc = EncoderModel()
        rate = enc.bitrate(1920, 30)
        assert 10e6 < rate < 20e6

    def test_transmission_time(self):
        enc = EncoderModel(base_bits=1e6, overhead_bits=0.0)
        t = enc.transmission_time(1920, 100.0)
        assert t == pytest.approx(0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EncoderModel(inter_gain=1.0)
        with pytest.raises(ValueError):
            EncoderModel(base_bits=-1)

    @given(st.floats(100, 3840), st.floats(1, 60))
    def test_bitrate_positive(self, width, fps):
        assert EncoderModel().bitrate(width, fps) > 0


class TestDeviceProfile:
    def test_flops_quadratic(self):
        p = DeviceProfile()
        assert p.flops_per_frame(1920) / p.flops_per_frame(960) == pytest.approx(4.0)

    def test_processing_time_has_floor(self):
        p = DeviceProfile(fixed_overhead=0.01)
        assert p.processing_time(10) >= 0.01

    def test_processing_time_monotone(self):
        p = JETSON_NX_PROFILE
        widths = [300, 600, 1200, 2000]
        times = [p.processing_time(w) for w in widths]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_energy_positive(self):
        assert JETSON_NX_PROFILE.energy_per_frame(960) > 0

    def test_utilization_linear_in_fps(self):
        p = JETSON_NX_PROFILE
        assert p.utilization(960, 30) == pytest.approx(3 * p.utilization(960, 10))

    def test_calibration_full_config_latency(self):
        # Per-frame compute latency at 2000 px should be in Fig. 2's
        # sub-second range.
        t = JETSON_NX_PROFILE.processing_time(2000)
        assert 0.05 < t < 0.8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DeviceProfile(effective_tflops=0)


class TestClipLibrary:
    def test_default_library_contents(self):
        from repro.video import default_library

        lib = default_library(n_frames=10, rng=0)
        assert len(lib) == 8
        assert "mot16-02-like" in lib.names

    def test_take_cycles(self):
        from repro.video import default_library

        lib = default_library(n_frames=5, rng=0)
        clips = lib.take(10)
        assert len(clips) == 10
        assert clips[0] is clips[8]

    def test_take_negative_raises(self):
        from repro.video import default_library

        lib = default_library(n_frames=5, rng=0)
        with pytest.raises(ValueError):
            lib.take(-1)

    def test_deterministic(self):
        from repro.video import default_library

        a = default_library(n_frames=5, rng=1)
        b = default_library(n_frames=5, rng=1)
        np.testing.assert_array_equal(
            a["mot16-04-like"].frames[0], b["mot16-04-like"].frames[0]
        )
