"""Tests for NSGA-II: sorting, crowding, and convergence on known fronts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moo import NSGA2, crowding_distance, fast_non_dominated_sort


class TestFastNonDominatedSort:
    def test_single_point(self):
        fronts = fast_non_dominated_sort(np.array([[1.0, 2.0]]))
        assert len(fronts) == 1
        assert fronts[0].tolist() == [0]

    def test_chain_of_dominated_points(self):
        y = np.array([[1, 1], [2, 2], [3, 3]], dtype=float)
        fronts = fast_non_dominated_sort(y)
        assert [f.tolist() for f in fronts] == [[0], [1], [2]]

    def test_anti_chain_single_front(self):
        y = np.array([[1, 3], [2, 2], [3, 1]], dtype=float)
        fronts = fast_non_dominated_sort(y)
        assert len(fronts) == 1
        assert sorted(fronts[0].tolist()) == [0, 1, 2]

    def test_duplicates_share_front(self):
        y = np.array([[1, 1], [1, 1], [2, 2]], dtype=float)
        fronts = fast_non_dominated_sort(y)
        assert sorted(fronts[0].tolist()) == [0, 1]

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_front0_is_nondominated(self, pts):
        y = np.array(pts, dtype=float)
        fronts = fast_non_dominated_sort(y)
        front0 = set(fronts[0].tolist())
        # every point is in exactly one front
        all_idx = sorted(i for f in fronts for i in f.tolist())
        assert all_idx == list(range(len(pts)))
        # nothing dominates a front-0 member
        for i in front0:
            for j in range(len(pts)):
                if j == i:
                    continue
                dominates = np.all(y[j] <= y[i]) and np.any(y[j] < y[i])
                assert not dominates


class TestCrowdingDistance:
    def test_boundary_points_infinite(self):
        y = np.array([[0, 3], [1, 2], [2, 1], [3, 0]], dtype=float)
        cd = crowding_distance(y)
        assert np.isinf(cd[0]) and np.isinf(cd[3])
        assert np.isfinite(cd[1]) and np.isfinite(cd[2])

    def test_two_points_infinite(self):
        cd = crowding_distance(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert np.all(np.isinf(cd))

    def test_denser_point_has_smaller_distance(self):
        # point 1 sits in the narrow window [0, 1.1]; point 2's window
        # [1.0, 3.0] is wide, so point 1 is the more crowded one
        y = np.array([[0, 3.0], [1.0, 2.0], [1.1, 1.9], [3.0, 0.0]])
        cd = crowding_distance(y)
        assert cd[1] < cd[2]


class TestNSGA2:
    def _run_biobj(self, seed=0, gens=25):
        # classic convex front: minimize (x, 1-x) over x in [0, 1] grid
        choices = [np.linspace(0, 1, 21)]

        def evaluate(g):
            x = g[0]
            return np.array([x, (1 - np.sqrt(x)) if x >= 0 else 1.0])

        opt = NSGA2(
            evaluate, choices, pop_size=24, n_generations=gens, rng=seed
        )
        return opt.run()

    def test_converges_to_front(self):
        res = self._run_biobj()
        front = res.front
        # all front points near the true curve y = 1 - sqrt(x)
        x = front[:, 0]
        y = front[:, 1]
        np.testing.assert_allclose(y, 1 - np.sqrt(x), atol=1e-9)
        assert front.shape[0] >= 5  # spread along the front

    def test_front_is_mutually_nondominated(self):
        res = self._run_biobj(seed=1)
        f = res.front
        for i in range(f.shape[0]):
            for j in range(f.shape[0]):
                if i == j:
                    continue
                assert not (np.all(f[i] <= f[j]) and np.any(f[i] < f[j]))

    def test_deterministic_by_seed(self):
        a = self._run_biobj(seed=3, gens=5)
        b = self._run_biobj(seed=3, gens=5)
        np.testing.assert_array_equal(a.objectives, b.objectives)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NSGA2(lambda g: g, [np.array([1.0])], pop_size=5)
        with pytest.raises(ValueError):
            NSGA2(lambda g: g, [np.array([])], pop_size=8)
        with pytest.raises(ValueError):
            NSGA2(lambda g: g, [np.array([1.0])], n_generations=0)

    def test_on_eva_problem(self):
        """NSGA-II generates a multi-point EVA Pareto front (Fig. 3b)."""
        from repro.core import EVAProblem

        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0, 20.0])
        space = problem.config_space

        def evaluate(genome):
            r = genome[[0, 2]]
            s = genome[[1, 3]]
            y = problem.evaluate(r, s)
            y = y.copy()
            y[1] = -y[1]  # maximize accuracy
            return y

        choices = [
            np.array(space.resolutions),
            np.array(space.fps_values),
        ] * 2
        res = NSGA2(evaluate, choices, pop_size=16, n_generations=8, rng=0).run()
        assert res.front.shape[0] >= 3
