"""Tests for hypervolume/GD/spread and scalarization rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moo import (
    achievement,
    generational_distance,
    hypervolume,
    spread,
    weighted_chebyshev,
    weighted_sum,
)


class TestHypervolume:
    def test_single_point_2d(self):
        hv = hypervolume(np.array([[1.0, 1.0]]), [3.0, 3.0])
        assert hv == pytest.approx(4.0)

    def test_two_disjoint_boxes_2d(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        # boxes: (3-1)(3-2)=2 and (3-2)(3-1)=2, overlap (3-2)(3-2)=1
        assert hypervolume(front, [3.0, 3.0]) == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        front = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert hypervolume(front, [3.0, 3.0]) == pytest.approx(4.0)

    def test_point_outside_reference_ignored(self):
        front = np.array([[5.0, 5.0]])
        assert hypervolume(front, [3.0, 3.0]) == 0.0

    def test_3d_single_point(self):
        hv = hypervolume(np.array([[0.0, 0.0, 0.0]]), [1.0, 2.0, 3.0])
        assert hv == pytest.approx(6.0)

    def test_3d_two_points(self):
        front = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0]])
        ref = [2.0, 2.0, 2.0]
        # vol A = 2*1*1 = 2; vol B = 1*2*2 = 4; overlap = 1*1*1 = 1
        assert hypervolume(front, ref) == pytest.approx(5.0)

    def test_monotone_in_front_size(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[1.0, 2.0], [2.0, 1.0]])
        ref = [3.0, 3.0]
        assert hypervolume(b, ref) >= hypervolume(a, ref)

    @given(
        st.lists(
            st.tuples(st.floats(0, 0.9), st.floats(0, 0.9), st.floats(0, 0.9)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_3d_matches_monte_carlo(self, pts):
        front = np.array(pts, dtype=float)
        ref = np.array([1.0, 1.0, 1.0])
        exact = hypervolume(front, ref)
        gen = np.random.default_rng(0)
        samples = gen.random((20000, 3))
        dominated = np.any(
            np.all(samples[:, None, :] >= front[None, :, :], axis=2), axis=1
        )
        mc = dominated.mean()
        assert exact == pytest.approx(mc, abs=0.02)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume(np.zeros((1, 2)), [1.0, 1.0, 1.0])


class TestGDAndSpread:
    def test_gd_zero_on_subset(self):
        truth = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert generational_distance(truth[:1], truth) == 0.0

    def test_gd_positive_off_front(self):
        truth = np.array([[0.0, 0.0]])
        assert generational_distance(np.array([[3.0, 4.0]]), truth) == pytest.approx(5.0)

    def test_spread_even_spacing_zero(self):
        front = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        assert spread(front) == pytest.approx(0.0, abs=1e-12)

    def test_spread_clumped_positive(self):
        front = np.array([[0.0, 0.0], [0.01, 0.0], [5.0, 0.0]])
        assert spread(front) > 0.5

    def test_spread_tiny_front(self):
        assert spread(np.array([[0.0, 1.0], [1.0, 0.0]])) == 0.0


class TestScalarization:
    def test_weighted_sum(self):
        assert weighted_sum([1.0, 2.0], [0.5, 1.0]) == pytest.approx(2.5)

    def test_weighted_sum_batched(self):
        out = weighted_sum(np.array([[1.0, 0.0], [0.0, 1.0]]), [2.0, 3.0])
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_chebyshev(self):
        assert weighted_chebyshev([1.0, 3.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_chebyshev_with_reference(self):
        out = weighted_chebyshev([2.0, 2.0], [1.0, 1.0], reference=[2.0, 0.0])
        assert out == pytest.approx(2.0)

    def test_achievement_breaks_ties(self):
        a = achievement([1.0, 0.0], [1.0, 1.0])
        b = achievement([1.0, 0.9], [1.0, 1.0])
        assert b > a  # same max, augmentation differs

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_sum([1.0], [-1.0])

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_sum([1.0, 2.0], [1.0])
