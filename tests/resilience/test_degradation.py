"""Degradation ladder, emergency reassignment, and PaMO's BO fallback."""

import numpy as np
import pytest

from repro.bo.acquisition import (
    QUCB,
    FallbackAcquisition,
    RandomDesignAcquisition,
    default_ladder,
    make_acquisition,
)
from repro.bo.loop import BOLoop
from repro.core import EVAProblem, PaMO, make_preference
from repro.obs import MemorySink, telemetry
from repro.pref import DecisionMaker
from repro.sched.assignment import reassign_to_surviving
from repro.sched.streams import PeriodicStream


class _BrokenAcquisition:
    """A rung whose surrogate has gone numerically toxic."""

    name = "broken"
    n_samples = 4
    last_batch_value = 0.0

    def evaluate(self, sampler, candidates, **kw):
        raise np.linalg.LinAlgError("posterior collapsed")

    def select_batch(self, sampler, pool, batch_size, **kw):
        raise np.linalg.LinAlgError("posterior collapsed")


class TestRandomDesignAcquisition:
    def test_registered(self):
        assert isinstance(make_acquisition("random"), RandomDesignAcquisition)

    def test_selects_valid_sorted_unique_batch(self):
        acq = RandomDesignAcquisition()
        pool = np.arange(20, dtype=float).reshape(10, 2)
        idx = acq.select_batch(None, pool, 4, rng=np.random.default_rng(0))
        assert idx.shape == (4,)
        assert len(set(idx.tolist())) == 4
        assert np.all(idx == np.sort(idx))
        assert np.all((idx >= 0) & (idx < 10))

    def test_seed_deterministic(self):
        acq = RandomDesignAcquisition()
        pool = np.arange(30, dtype=float).reshape(15, 2)
        a = acq.select_batch(None, pool, 5, rng=np.random.default_rng(7))
        b = acq.select_batch(None, pool, 5, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_rejects_caller_errors(self):
        acq = RandomDesignAcquisition()
        pool = np.zeros((3, 2))
        with pytest.raises(ValueError, match="batch_size"):
            acq.select_batch(None, pool, 0)
        with pytest.raises(ValueError, match="pool"):
            acq.select_batch(None, pool, 5)


class TestFallbackAcquisition:
    def test_falls_through_to_random_rung(self):
        ladder = FallbackAcquisition(_BrokenAcquisition())
        pool = np.arange(16, dtype=float).reshape(8, 2)
        telemetry.reset()
        sink = MemorySink()
        telemetry.enable(sink)
        try:
            idx = ladder.select_batch(
                None, pool, 3, rng=np.random.default_rng(0)
            )
            counters = telemetry.report()["counters"]
            events = [r for r in sink.records if r.get("event") == "fault.acq_fallback"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert idx.shape == (3,)
        assert ladder.active_rung == "random"
        assert counters["bo.acq_fallbacks"] == 1
        assert events and events[0]["failed_rung"] == "broken"

    def test_caller_errors_still_surface(self):
        ladder = FallbackAcquisition(_BrokenAcquisition())
        with pytest.raises(ValueError, match="pool"):
            ladder.select_batch(None, np.zeros((2, 2)), 5)

    def test_healthy_primary_not_disturbed(self):
        primary = RandomDesignAcquisition()
        ladder = FallbackAcquisition(primary)
        pool = np.arange(16, dtype=float).reshape(8, 2)
        direct = primary.select_batch(None, pool, 3, rng=np.random.default_rng(3))
        laddered = ladder.select_batch(None, pool, 3, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(direct, laddered)

    def test_default_ladder_is_idempotent_and_appends_qucb(self):
        primary = make_acquisition("qnei", n_samples=8)
        ladder = default_ladder(primary)
        assert isinstance(ladder, FallbackAcquisition)
        assert default_ladder(ladder) is ladder
        names = [r.name for r in ladder.rungs]
        assert names == ["qNEI", "qUCB", "random"]
        # a qUCB primary doesn't get a redundant qUCB rung
        assert [r.name for r in default_ladder(QUCB(n_samples=4)).rungs] == [
            "qUCB",
            "random",
        ]


def _stream(i, fps, bits):
    return PeriodicStream(
        stream_id=i, fps=fps, resolution=640.0,
        processing_time=0.01, bits_per_frame=bits,
    )


class TestReassignToSurviving:
    def test_keeps_live_placements_and_moves_orphans(self):
        streams = [_stream(0, 10, 2e5), _stream(1, 5, 1e5), _stream(2, 10, 1e5)]
        out = reassign_to_surviving(
            streams, [0, 1, 1], alive=[True, False, True], bandwidths_mbps=[10, 10, 10]
        )
        assert out[0] == 0  # server 0 survived; placement untouched
        assert out[1] != 1 and out[2] != 1
        assert all(a in (0, 2) for a in out)

    def test_balances_by_load_per_bandwidth(self):
        streams = [_stream(0, 10, 4e5), _stream(1, 10, 4e5)]
        out = reassign_to_surviving(
            streams, [0, 0], alive=[False, True, True], bandwidths_mbps=[10, 10, 40]
        )
        # both orphans prefer the wide uplink until it is loaded enough
        assert set(out) <= {1, 2}
        assert out[0] == 2  # heaviest orphan goes to the biggest pipe first

    def test_unassigned_entries_pass_through(self):
        streams = [_stream(0, 10, 1e5)]
        assert reassign_to_surviving(
            streams, [-1], alive=[True, True], bandwidths_mbps=[10, 10]
        ) == [-1]

    def test_no_survivors_raises(self):
        streams = [_stream(0, 10, 1e5)]
        with pytest.raises(ValueError, match="surviving"):
            reassign_to_surviving(
                streams, [0], alive=[False, False], bandwidths_mbps=[10, 10]
            )


class TestPaMOFallback:
    def _pamo(self, **kw):
        problem = EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = make_preference(problem)
        defaults = dict(
            n_profile=40,
            n_outcome_space=20,
            n_init_comparisons=3,
            n_pref_queries=4,
            batch_size=2,
            n_iterations=3,
            n_pool=12,
            rng=0,
        )
        defaults.update(kw)
        return problem, PaMO(problem, decision_maker=DecisionMaker(pref, rng=0), **defaults)

    def test_bo_collapse_degrades_to_heuristic_schedule(self, monkeypatch):
        problem, pamo = self._pamo()

        def _explode(self, **kw):
            raise np.linalg.LinAlgError("bank collapsed")

        monkeypatch.setattr(BOLoop, "run", _explode)
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            out = pamo.optimize()
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out.extras.get("fallback") in ("incumbent", "min_config")
        assert problem.is_feasible(out.decision.resolutions, out.decision.fps)
        assert counters["pamo.bo_fallbacks"] == 1

    def test_non_resilient_mode_reraises(self, monkeypatch):
        _, pamo = self._pamo(resilient=False)

        def _explode(self, **kw):
            raise np.linalg.LinAlgError("bank collapsed")

        monkeypatch.setattr(BOLoop, "run", _explode)
        with pytest.raises(np.linalg.LinAlgError):
            pamo.optimize()
