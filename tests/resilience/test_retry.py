"""RetryPolicy semantics and run_parallel retry integration."""

import time
from pathlib import Path

import pytest

from repro.bench import run_parallel
from repro.obs import MemorySink, telemetry
from repro.resilience import RetryPolicy
from repro.resilience.retry import ArmAbandonedError


def _count_attempt(marker_dir, arm):
    """Register one attempt of ``arm``; returns its 0-based attempt index.

    Attempts of one arm never overlap (a retry is only submitted after
    the previous attempt failed), so exclusive-create marker files give
    a race-free cross-process attempt counter.
    """
    d = Path(marker_dir)
    n = 0
    while True:
        try:
            (d / f"arm{arm}.attempt{n}").touch(exist_ok=False)
            return n
        except FileExistsError:
            n += 1


def _flaky_arm(marker_dir, arm, fail_times):
    n = _count_attempt(marker_dir, arm)
    if n < fail_times:
        raise RuntimeError(f"arm {arm} transient failure #{n}")
    return (arm, n)


def _slow_then_fast_arm(marker_dir, arm):
    if _count_attempt(marker_dir, arm) == 0:
        time.sleep(2.5)
    return ("fast", arm)


class TestRetryPolicy:
    def test_validates_fields(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0.0)

    def test_delay_doubles_per_retry(self):
        p = RetryPolicy(max_attempts=4, base_delay=0.2)
        assert p.delay_before(1) == 0.0
        assert p.delay_before(2) == pytest.approx(0.2)
        assert p.delay_before(3) == pytest.approx(0.4)
        assert p.delay_before(4) == pytest.approx(0.8)


class TestInlineRetry:
    def test_succeeds_after_transient_failures(self, tmp_path):
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            out = run_parallel(
                _flaky_arm,
                [(str(tmp_path), 0, 2)],
                n_workers=1,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            )
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [(0, 2)]
        assert counters["retry.attempts"] == 2
        assert counters["retry.succeeded_after_retry"] == 1

    def test_abandons_after_max_attempts(self, tmp_path):
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            with pytest.raises(ArmAbandonedError) as exc_info:
                run_parallel(
                    _flaky_arm,
                    [(str(tmp_path), 0, 99)],
                    n_workers=1,
                    retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                )
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert exc_info.value.arm_index == 0
        assert exc_info.value.attempts == 2
        assert isinstance(exc_info.value.last_error, RuntimeError)
        assert counters["retry.abandoned"] == 1

    def test_no_retry_without_policy(self, tmp_path):
        with pytest.raises(RuntimeError, match="transient"):
            run_parallel(_flaky_arm, [(str(tmp_path), 0, 1)], n_workers=1)


class TestPoolRetry:
    def test_flaky_arm_retried_results_in_order(self, tmp_path):
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            out = run_parallel(
                _flaky_arm,
                [(str(tmp_path), 0, 0), (str(tmp_path), 1, 1), (str(tmp_path), 2, 0)],
                n_workers=2,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            )
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [(0, 0), (1, 1), (2, 0)]
        assert counters["retry.attempts"] == 1
        assert counters["retry.succeeded_after_retry"] == 1

    def test_pool_abandons_exhausted_arm(self, tmp_path):
        with pytest.raises(ArmAbandonedError) as exc_info:
            run_parallel(
                _flaky_arm,
                [(str(tmp_path), 0, 0), (str(tmp_path), 1, 99)],
                n_workers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            )
        assert exc_info.value.arm_index == 1
        assert exc_info.value.attempts == 2

    def test_timed_out_attempt_reruns(self, tmp_path):
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            out = run_parallel(
                _slow_then_fast_arm,
                [(str(tmp_path), 7), (str(tmp_path), 8)],
                n_workers=4,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0, timeout=0.6),
            )
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [("fast", 7), ("fast", 8)]
        assert counters["retry.timeouts"] >= 2
