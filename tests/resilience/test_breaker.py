"""CircuitBreaker: state machine, epoch cooldown, telemetry, pickling."""

import pickle

import pytest

from repro.obs import telemetry
from repro.resilience import BREAKER_STATES, CircuitBreaker


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"failure_threshold": 0},
            {"cooldown_epochs": 0},
            {"probe_successes": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
        ],
    )
    def test_bad_params(self, kw):
        with pytest.raises(ValueError):
            CircuitBreaker(**kw)

    def test_force_state_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown breaker state"):
            CircuitBreaker().force_state("ajar")


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == "closed"
        assert b.rank == 0
        assert b.allow(0)

    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3)
        assert b.record(epoch=1, failed=True) is None
        assert b.record(epoch=2, failed=True) is None
        assert b.record(epoch=3, failed=True) == "open"
        assert b.state == "open"
        assert b.opens == 1
        assert not b.allow(4)

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record(epoch=1, failed=True)
        b.record(epoch=2, failed=False)
        assert b.record(epoch=3, failed=True) is None
        assert b.state == "closed"

    def test_deadline_breach_counts_as_failure(self):
        b = CircuitBreaker(failure_threshold=1, deadline_s=0.1)
        assert b.record(epoch=1, duration_s=0.2) == "open"

    def test_no_deadline_means_duration_ignored(self):
        b = CircuitBreaker(failure_threshold=1, deadline_s=None)
        assert b.record(epoch=1, duration_s=100.0) is None
        assert b.state == "closed"

    def test_cooldown_then_half_open(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=3)
        b.record(epoch=10, failed=True)
        assert not b.allow(11)
        assert not b.allow(12)
        assert b.allow(13)  # 13 - 10 >= 3 -> half-open probe
        assert b.state == "half_open"
        assert b.rank == 1

    def test_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        b.record(epoch=1, failed=True)
        assert b.allow(2)
        assert b.record(epoch=2, failed=False) == "close"
        assert b.state == "closed"
        assert b.closes == 1

    def test_probe_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=2)
        b.record(epoch=1, failed=True)
        assert b.allow(3)
        assert b.record(epoch=3, failed=True) == "open"
        assert b.opened_epoch == 3
        assert not b.allow(4)  # cooldown restarted from the re-open

    def test_multiple_probes_required(self):
        b = CircuitBreaker(
            failure_threshold=1, cooldown_epochs=1, probe_successes=2
        )
        b.record(epoch=1, failed=True)
        assert b.allow(2)
        assert b.record(epoch=2, failed=False) is None
        assert b.state == "half_open"
        assert b.record(epoch=3, failed=False) == "close"


class TestTelemetryAndState:
    def test_transition_counters(self):
        telemetry.enable()
        b = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        b.record(epoch=1, failed=True)
        b.allow(2)
        b.record(epoch=2, failed=False)
        counters = telemetry.report()["counters"]
        assert counters["breaker.opens"] == 1
        assert counters["breaker.half_opens"] == 1
        assert counters["breaker.closes"] == 1

    def test_snapshot_is_json_safe(self):
        import json

        b = CircuitBreaker(failure_threshold=1)
        b.record(epoch=5, failed=True)
        snap = json.loads(json.dumps(b.snapshot()))
        assert snap["state"] == "open"
        assert snap["opened_epoch"] == 5
        assert snap["rank"] == BREAKER_STATES.index("open")

    def test_pickle_round_trip(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_epochs=4)
        b.record(epoch=1, failed=True)
        clone = pickle.loads(pickle.dumps(b))
        assert clone.failures == 1
        assert clone.state == "closed"
        assert clone.cooldown_epochs == 4

    def test_force_state(self):
        b = CircuitBreaker()
        b.force_state("open", epoch=7)
        assert b.state == "open"
        assert b.opened_epoch == 7
        b.force_state("closed")
        assert b.opened_epoch is None
