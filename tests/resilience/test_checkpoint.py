"""Checkpoint save/load mechanics and bit-identical PaMO resume."""

import pickle

import numpy as np
import pytest

from repro.core import EVAProblem, PaMO, make_preference
from repro.pref import DecisionMaker
from repro.resilience import load_checkpoint, save_checkpoint
from repro.resilience.checkpoint import CHECKPOINT_VERSION, resume_run


def _small_pamo(problem, dm, **kw):
    defaults = dict(
        n_profile=40,
        n_outcome_space=20,
        n_init_comparisons=3,
        n_pref_queries=6,
        batch_size=2,
        n_iterations=5,
        n_pool=12,
        rng=0,
    )
    defaults.update(kw)
    return PaMO(problem, decision_maker=dm, **defaults)


class TestSaveLoad:
    def test_roundtrip_with_meta(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path,
            scheduler={"rng": 7},
            bo_state=[1, 2, 3],
            method="pamo",
            iteration=4,
        )
        ckpt = load_checkpoint(path)
        assert ckpt.scheduler == {"rng": 7}
        assert ckpt.bo_state == [1, 2, 3]
        assert ckpt.meta["method"] == "pamo"
        assert ckpt.iteration == 4

    def test_rejects_foreign_version(self, tmp_path):
        path = tmp_path / "old.ckpt"
        with path.open("wb") as fh:
            pickle.dump(
                {"version": CHECKPOINT_VERSION + 1, "scheduler": 0, "bo_state": 0},
                fh,
            )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_failed_save_keeps_previous_checkpoint(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, scheduler="good", bo_state=1, iteration=1)
        with pytest.raises(Exception):
            # lambdas don't pickle; the atomic write must not clobber
            save_checkpoint(path, scheduler=lambda: None, bo_state=2, iteration=2)
        ckpt = load_checkpoint(path)
        assert ckpt.scheduler == "good"
        assert ckpt.iteration == 1
        assert not list(tmp_path.glob("*.tmp"))


class TestPaMOResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """checkpoint → resume reproduces the uninterrupted run exactly."""
        problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = make_preference(problem)

        baseline = _small_pamo(problem, DecisionMaker(pref, rng=0)).optimize()

        ckpt_path = tmp_path / "pamo.ckpt"
        checkpointed = _small_pamo(
            problem,
            DecisionMaker(pref, rng=0),
            checkpoint_path=str(ckpt_path),
            checkpoint_every=2,
        ).optimize()
        assert ckpt_path.exists()
        # Checkpointing must not perturb the run itself.
        np.testing.assert_array_equal(
            checkpointed.decision.resolutions, baseline.decision.resolutions
        )
        assert checkpointed.decision.benefit == baseline.decision.benefit

        # "Kill" the run: drop the finished scheduler, continue from disk.
        resumed = resume_run(ckpt_path)
        np.testing.assert_array_equal(
            resumed.decision.resolutions, baseline.decision.resolutions
        )
        np.testing.assert_array_equal(
            resumed.decision.fps, baseline.decision.fps
        )
        assert resumed.decision.assignment == baseline.decision.assignment
        assert resumed.decision.benefit == baseline.decision.benefit

    def test_checkpoint_records_midrun_iteration(self, tmp_path):
        problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = make_preference(problem)
        ckpt_path = tmp_path / "pamo.ckpt"
        _small_pamo(
            problem,
            DecisionMaker(pref, rng=0),
            checkpoint_path=str(ckpt_path),
            checkpoint_every=2,
        ).optimize()
        ckpt = load_checkpoint(ckpt_path)
        # checkpoints fire only mid-run (every 2 of 5 iterations → last at 4)
        assert 0 < ckpt.iteration < 5
        assert ckpt.meta["method"] == "PaMO"
        assert ckpt.bo_state.next_iteration == ckpt.iteration + 1
