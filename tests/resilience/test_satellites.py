"""Satellite hardening: GP cholesky retries, Laplace non-convergence,
and signal-safe telemetry sinks."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.gp.regression as regression
from repro.gp import cache as gp_cache
from repro.gp.preference import ComparisonData, PreferenceGP
from repro.obs import MemorySink, telemetry
from repro.pref.learner import PreferenceLearner
from repro.utils import safe_cholesky


def _train_data(n=12, d=2, rng=0):
    gen = np.random.default_rng(rng)
    x = gen.uniform(size=(n, d))
    y = np.sin(x.sum(axis=1)) + 0.01 * gen.standard_normal(n)
    return x, y


class TestCholeskyRetry:
    @pytest.fixture(autouse=True)
    def _no_chol_cache(self):
        # a cached factor would bypass the monkeypatched decomposition
        gp_cache.chol_cache.clear()
        yield
        gp_cache.chol_cache.clear()

    def test_transient_failure_recovers_with_jitter(self, monkeypatch):
        calls = {"n": 0}

        def flaky(a, **kw):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise np.linalg.LinAlgError("not positive definite")
            return safe_cholesky(a, **kw)

        monkeypatch.setattr(regression, "safe_cholesky", flaky)
        x, y = _train_data()
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            gp = regression.GPRegressor().fit(x, y, optimize=False)
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert gp.is_fitted
        assert counters["gp.cholesky_jitter_retries"] == 2
        mean, var = gp.predict(x[:3])
        assert np.all(np.isfinite(mean)) and np.all(var >= 0)

    def test_persistent_failure_reraises(self, monkeypatch):
        def hopeless(a, **kw):
            raise np.linalg.LinAlgError("never PSD")

        monkeypatch.setattr(regression, "safe_cholesky", hopeless)
        x, y = _train_data()
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            with pytest.raises(np.linalg.LinAlgError):
                regression.GPRegressor().fit(x, y, optimize=False)
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert counters["gp.cholesky_jitter_retries"] == 4


def _comparisons(n_items=8, n_pairs=6, rng=0):
    gen = np.random.default_rng(rng)
    data = ComparisonData(items=gen.uniform(size=(n_items, 2)))
    for _ in range(n_pairs):
        i, j = gen.choice(n_items, 2, replace=False)
        data.add_comparison(int(i), int(j))
    return data


class TestLaplaceConvergence:
    def test_converged_flag_set_on_clean_fit(self):
        gp = PreferenceGP().fit(_comparisons())
        assert gp.converged

    def test_iteration_cap_leaves_flag_unset(self):
        gp = PreferenceGP(max_newton_iter=0)
        gp.fit(_comparisons())
        assert gp.is_fitted and not gp.converged


class _SumPreference:
    """Deterministic decision maker: larger coordinate sum wins."""

    def compare(self, y1, y2):
        return float(np.sum(y1)) >= float(np.sum(y2))


class TestLearnerKeepsPosterior:
    def test_nonconverged_refit_keeps_previous_model(self):
        gen = np.random.default_rng(0)
        learner = PreferenceLearner(
            gen.uniform(size=(12, 3)), decision_maker=_SumPreference(), rng=0
        )
        learner.initialize(n_pairs=3)
        fitted = learner.model
        assert fitted.converged
        # Sabotage the next refit: zero Newton iterations can't converge.
        fitted.max_newton_iter = 0
        telemetry.reset()
        sink = MemorySink()
        telemetry.enable(sink)
        try:
            with pytest.warns(RuntimeWarning, match="iteration cap"):
                learner.compare_against(gen.uniform(size=(1, 3)), gen.uniform(size=3))
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert learner.model is fitted  # stale-but-sane posterior kept
        assert counters["pref.laplace_nonconverged"] == 1
        assert any(
            r.get("event") == "pref.laplace_nonconverged" for r in sink.records
        )
        # the learner still answers utility queries
        assert np.all(np.isfinite(learner.utility(gen.uniform(size=(2, 3)))))


class TestSignalFlush:
    def test_sigterm_flushes_jsonl_sink_and_preserves_exit_status(self, tmp_path):
        """A SIGTERM'd run leaves its buffered telemetry on disk."""
        log = tmp_path / "events.jsonl"
        script = (
            "import os, signal\n"
            "from repro.obs import telemetry\n"
            "from repro.obs.sinks import JsonlSink\n"
            f"telemetry.enable(JsonlSink({str(log)!r}))\n"
            "telemetry.event('test.before_kill', marker=42)\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n"
            "raise SystemExit('signal handler should not return here')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=str(Path(__file__).resolve().parents[2]),
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGTERM, proc.stderr
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert any(
            r.get("event") == "test.before_kill" and r.get("marker") == 42
            for r in lines
        )
