"""Chaos harness: degraded problems, epoch replay, and the acceptance run."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import EVAProblem, PaMO, make_preference
from repro.obs import MemorySink, telemetry
from repro.pref import DecisionMaker
from repro.resilience import ChaosRunner, FaultPlan
from repro.resilience.chaos import degraded_problem


def _problem(n_streams=4, bandwidths=(10.0, 15.0, 20.0, 30.0)):
    return EVAProblem(n_streams=n_streams, bandwidths_mbps=list(bandwidths))


class TestDegradedProblem:
    def test_removes_dead_servers_and_scales_bandwidth(self):
        prob = _problem()
        out = degraded_problem(
            prob,
            alive=[True, False, True, True],
            bw_factor=[1.0, 1.0, 0.5, 1.0],
            active=[True] * 4,
        )
        assert out.n_servers == 3
        assert out.bandwidths_mbps == pytest.approx([10.0, 10.0, 30.0])
        assert out.n_streams == 4

    def test_drops_departed_streams(self):
        prob = _problem()
        out = degraded_problem(
            prob,
            alive=[True] * 4,
            bw_factor=[1.0] * 4,
            active=[True, False, True, False],
        )
        assert out.n_streams == 2

    def test_none_when_nothing_survives(self):
        prob = _problem()
        assert (
            degraded_problem(
                prob, alive=[False] * 4, bw_factor=[1.0] * 4, active=[True] * 4
            )
            is None
        )
        assert (
            degraded_problem(
                prob, alive=[True] * 4, bw_factor=[1.0] * 4, active=[False] * 4
            )
            is None
        )

    def test_validates_lengths(self):
        prob = _problem()
        with pytest.raises(ValueError):
            degraded_problem(
                prob, alive=[True], bw_factor=[1.0] * 4, active=[True] * 4
            )


class TestChaosAcceptance:
    def test_pamo_survives_one_of_four_server_crash(self):
        """The ISSUE acceptance run: crash 1 of 4 servers mid-run.

        PaMO must finish, replan onto the survivors, keep the schedule
        feasible (Const1/Const2), and the recovery epoch must restore
        the full topology.
        """
        prob = _problem()
        pref = make_preference(prob)
        plan = FaultPlan.from_specs(["crash:1@0.5", "recover:1@2.0"])

        def factory(p):
            return PaMO(
                p,
                decision_maker=DecisionMaker(pref, rng=0),
                n_profile=40,
                n_outcome_space=20,
                n_init_comparisons=3,
                n_pref_queries=6,
                batch_size=2,
                n_iterations=4,
                n_pool=12,
                rng=0,
            )

        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            report = ChaosRunner(prob, plan, factory, preference=pref).run()
            counters = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()

        assert len(report.epochs) == 2
        crash, recover = report.epochs
        assert crash.n_servers == 3 and recover.n_servers == 4
        assert report.all_feasible
        # PaMO replans in-place (warm start) instead of re-optimizing.
        assert crash.replanned and recover.replanned
        assert counters.get("pamo.replans", 0) == 2
        # Every placement lands on a surviving server.
        assignment = np.asarray(crash.outcome.decision.assignment)
        assert np.all((assignment >= 0) & (assignment < 3))
        # The surviving-topology decision itself keeps Const1/Const2
        # (the run-wide counters include infeasible BO candidates, so
        # re-schedule just the final decision under a fresh registry).
        survivors = degraded_problem(
            prob,
            alive=[True, False, True, True],
            bw_factor=[1.0] * 4,
            active=[True] * 4,
        )
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            survivors.schedule(
                crash.outcome.decision.resolutions, crash.outcome.decision.fps
            )
            final = telemetry.report()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert final.get("sched.schedules", 0) == 1
        assert final.get("sched.const1_violations", 0) == 0
        assert final.get("sched.const2_violations", 0) == 0
        # Losing 1 of 4 servers must degrade gracefully, not collapse.
        assert report.worst_drop is not None and report.worst_drop <= 0.5

    def test_stream_churn_rebuilds_observation_set(self):
        """A stream leaving changes the decision dimension; replan copes."""
        prob = _problem(n_streams=3, bandwidths=(10.0, 20.0, 30.0))
        pref = make_preference(prob)
        plan = FaultPlan.from_specs(["leave:2@0.5"])

        def factory(p):
            return PaMO(
                p,
                decision_maker=DecisionMaker(pref, rng=0),
                n_profile=40,
                n_outcome_space=20,
                n_init_comparisons=3,
                n_pref_queries=6,
                batch_size=2,
                n_iterations=3,
                n_pool=12,
                rng=0,
            )

        report = ChaosRunner(prob, plan, factory, preference=pref).run()
        (epoch,) = report.epochs
        assert epoch.n_streams == 2
        assert epoch.feasible
        assert epoch.outcome.decision.resolutions.shape == (2,)


class TestChaosCli:
    def test_chaos_command_random_method(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = main(
            [
                "chaos",
                "--streams", "3",
                "--servers", "3",
                "--method", "random",
                "--seed", "0",
                "--faults", "crash:1@0.5,recover:1@2.0",
                "--output", str(out_path),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "baseline benefit" in printed
        report = json.loads(out_path.read_text())
        assert report["all_feasible"] is True
        assert len(report["epochs"]) == 2

    def test_chaos_command_seeded_random_plan(self, capsys):
        rc = main(
            [
                "chaos",
                "--streams", "3",
                "--servers", "3",
                "--method", "random",
                "--seed", "3",
                "--n-faults", "2",
            ]
        )
        assert rc == 0


class TestChaosAlerts:
    """An injected fault must trip the shared alert machinery."""

    def _run(self, monitor, plan_specs=("crash:1@0.5", "recover:1@2.0")):
        from repro.baselines import make_scheduler

        prob = _problem()
        pref = make_preference(prob)
        plan = FaultPlan.from_specs(list(plan_specs))

        def factory(p):
            return make_scheduler("greedy", p, preference=pref, rng=0)

        return ChaosRunner(
            prob, plan, factory, preference=pref, monitor=monitor
        ).run()

    def test_server_crash_fires_and_recovery_resolves(self):
        from repro.obs import HealthMonitor, SloRule

        monitor = HealthMonitor(
            [SloRule(metric="n_servers", op=">=", threshold=4.0)]
        )
        telemetry.reset()
        telemetry.enable(MemorySink())
        try:
            report = self._run(monitor)
            records = list(telemetry.sink.records)
        finally:
            telemetry.disable()
            telemetry.reset()
        kinds = [a["event"] for a in report.alerts]
        assert kinds == ["alert.fired", "alert.resolved"]
        assert report.alerts_fired == 1
        assert report.alerts[0]["since_epoch"] == 0
        # The same edges land in telemetry, tagged with the fault time.
        emitted = [r for r in records if r["event"].startswith("alert.")]
        assert [r["event"] for r in emitted] == kinds
        assert emitted[0]["time"] == 0.5
        assert report.to_dict()["alerts_fired"] == 1

    def test_benefit_drop_rule_abstains_without_schedule(self):
        from repro.obs import HealthMonitor, SloRule

        # Crashing every server leaves no schedule: benefit is None, so
        # the drop rule abstains instead of firing on garbage.
        monitor = HealthMonitor(
            [SloRule(metric="benefit_drop_ratio", op="<=", threshold=0.5)]
        )
        report = self._run(
            monitor,
            plan_specs=[f"crash:{j}@1.0" for j in range(4)],
        )
        assert report.alerts == []

    def test_no_monitor_no_alerts(self):
        report = self._run(None)
        assert report.alerts == []
        assert report.alerts_fired == 0

    def test_cli_max_drop_builds_monitor(self, capsys):
        rc = main(
            [
                "chaos",
                "--streams", "3",
                "--servers", "3",
                "--method", "random",
                "--seed", "0",
                "--faults", "crash:1@0.5,recover:1@2.0",
                "--max-drop", "0.0",
            ]
        )
        out = capsys.readouterr().out
        assert "alerts" in out
        # A zero budget either passes exactly (drop == 0, no alert) or
        # fires the benefit_drop rule and fails the gate.
        if rc == 1:
            assert "alert.fired: benefit_drop" in out
        else:
            assert rc == 0
