"""Fault-plan construction, parsing, and deterministic sim replay."""

import numpy as np
import pytest

from repro.bench import run_parallel
from repro.obs import MemorySink, telemetry
from repro.resilience import FaultEvent, FaultPlan, parse_fault_spec
from repro.sim.cluster import EdgeCluster, StreamSpec


def _streams():
    return [
        StreamSpec(0, fps=5.0, processing_time=0.01, bits_per_frame=1e5),
        StreamSpec(1, fps=10.0, processing_time=0.01, bits_per_frame=2e5),
        StreamSpec(2, fps=2.0, processing_time=0.02, bits_per_frame=1e5),
    ]


def _run_once(plan):
    """One fault-injected sim; returns (fault events, per-stream counts)."""
    telemetry.reset()
    sink = MemorySink()
    telemetry.enable(sink)
    try:
        cluster = EdgeCluster([30.0, 20.0, 10.0])
        report = cluster.run(_streams(), [0, 1, 2], 4.0, fault_plan=plan)
        faults = [
            (r["kind"], r["target"], r["time"])
            for r in sink.records
            if r.get("event") == "fault.inject"
        ]
        counts = {
            sid: (m.frames_emitted, m.frames_completed)
            for sid, m in report.streams.items()
        }
        dropped = [srv.frames_dropped for srv in cluster.servers]
    finally:
        telemetry.disable()
        telemetry.reset()
    return faults, counts, dropped


def _sim_arm(seed):
    """Picklable arm for the cross-worker determinism test."""
    plan = FaultPlan.random(
        n_servers=3, n_streams=3, horizon=3.0, n_faults=4, rng=seed
    )
    cluster = EdgeCluster([30.0, 20.0, 10.0])
    report = cluster.run(_streams(), [0, 1, 2], 4.0, fault_plan=plan)
    return (
        tuple((e.kind, e.target, e.time) for e in plan),
        {s: m.frames_completed for s, m in report.streams.items()},
        tuple(srv.frames_dropped for srv in cluster.servers),
    )


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(time=1.0, kind="meteor_strike", target=0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(time=-0.5, kind="server_crash", target=0)

    def test_bandwidth_drop_value_default_and_bounds(self):
        e = FaultEvent(time=1.0, kind="bandwidth_drop", target=0)
        assert 0.0 < e.value <= 1.0
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, kind="bandwidth_drop", target=0, value=0.0)
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, kind="bandwidth_drop", target=0, value=1.5)

    def test_dict_roundtrip(self):
        e = FaultEvent(time=2.0, kind="bandwidth_drop", target=1, value=0.25)
        assert FaultEvent.from_dict(e.to_dict()) == e


class TestParseFaultSpec:
    @pytest.mark.parametrize(
        "spec,kind,target,time",
        [
            ("crash:1@0.5", "server_crash", 1, 0.5),
            ("recover:1@2", "server_recover", 1, 2.0),
            ("leave:3@1.5", "stream_leave", 3, 1.5),
            ("join:3@2.5", "stream_join", 3, 2.5),
            ("server_crash:0@1", "server_crash", 0, 1.0),
        ],
    )
    def test_parses(self, spec, kind, target, time):
        e = parse_fault_spec(spec)
        assert (e.kind, e.target, e.time) == (kind, target, time)

    def test_parses_bandwidth_factor(self):
        e = parse_fault_spec("bw:2@1.5x0.25")
        assert e.kind == "bandwidth_drop"
        assert e.value == 0.25

    @pytest.mark.parametrize("bad", ["", "crash", "crash:1", "bogus:1@2", "crash:x@2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestFaultPlan:
    def test_sorts_events_by_time(self):
        plan = FaultPlan.from_specs(["recover:0@3", "crash:0@1"])
        assert [e.kind for e in plan] == ["server_crash", "server_recover"]
        assert plan.horizon == 3.0

    def test_scaled(self):
        plan = FaultPlan.from_specs(["crash:0@1", "recover:0@2"]).scaled(2.0)
        assert [e.time for e in plan] == [2.0, 4.0]

    def test_dict_roundtrip(self):
        plan = FaultPlan.from_specs(["crash:1@0.5", "bw:0@2.0x0.5"])
        assert tuple(FaultPlan.from_dict(plan.to_dict())) == tuple(plan)

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(n_servers=4, n_streams=3, horizon=5.0, n_faults=6, rng=11)
        b = FaultPlan.random(n_servers=4, n_streams=3, horizon=5.0, n_faults=6, rng=11)
        c = FaultPlan.random(n_servers=4, n_streams=3, horizon=5.0, n_faults=6, rng=12)
        assert tuple(a) == tuple(b)
        assert tuple(a) != tuple(c)

    def test_random_never_crashes_all_servers_at_once(self):
        for seed in range(8):
            plan = FaultPlan.random(
                n_servers=2, horizon=5.0, n_faults=10, rng=seed
            )
            crashed = set()
            for e in plan:
                if e.kind == "server_crash":
                    crashed.add(e.target)
                elif e.kind == "server_recover":
                    crashed.discard(e.target)
                assert len(crashed) < 2


class TestDeterministicReplay:
    def test_same_plan_same_events_and_metrics(self):
        """Two runs under the same seeded plan are bit-identical."""
        plan = FaultPlan.random(
            n_servers=3, n_streams=3, horizon=3.0, n_faults=5, rng=3
        )
        first = _run_once(plan)
        second = _run_once(plan)
        assert first == second
        # the plan actually did something
        assert first[0], "plan injected no faults"

    def test_crash_drops_frames_and_recover_resumes(self):
        plan = FaultPlan.from_specs(["crash:0@0.5", "recover:0@2.0"])
        faults, counts, dropped = _run_once(plan)
        assert [f[0] for f in faults] == ["server_crash", "server_recover"]
        assert dropped[0] > 0
        emitted, completed = counts[0]
        assert 0 < completed < emitted

    def test_stream_leave_and_join_gate_emission(self):
        quiet = _run_once(FaultPlan.from_specs(["leave:0@1.0"]))
        rejoin = _run_once(
            FaultPlan.from_specs(["leave:0@1.0", "join:0@2.0"])
        )
        assert quiet[1][0][0] < rejoin[1][0][0] <= _run_once(FaultPlan(()))[1][0][0]

    def test_identical_across_run_parallel_workers(self):
        """The same seed yields the same faults/metrics in every process."""
        inline = _sim_arm(5)
        outs = run_parallel(_sim_arm, [(5,), (5,), (5,)], n_workers=2)
        for out in outs:
            assert out == inline
