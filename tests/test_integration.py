"""Cross-module integration tests: the full pipeline end to end.

These exercise the seams the unit tests can't: detector → profiler →
surrogate bank → PaMO → Algorithm 1 → simulator, and the consistency
between the analytic outcome functions and the event-level testbed.
"""

import numpy as np
import pytest

from repro.core import EVAProblem, PaMO, make_preference
from repro.outcomes import OutcomeSurrogateBank, profile_grid
from repro.outcomes.profiler import samples_to_arrays
from repro.pref import DecisionMaker
from repro.sched import const2_satisfied
from repro.sim import simulate_schedule
from repro.video import SceneConfig, generate_clip


class TestAnalyticVsSimulated:
    """Eq. 2-5 closed forms must agree with the event-level testbed
    whenever the schedule is feasible (no queueing)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible_decisions_agree(self, seed):
        problem = EVAProblem(n_streams=3, bandwidths_mbps=[20.0, 30.0])
        gen = np.random.default_rng(seed)
        # rejection-sample a feasible decision
        for _ in range(50):
            r, s = problem.sample_decision(gen)
            if problem.is_feasible(r, s):
                break
        else:
            pytest.skip("no feasible decision found")
        y_analytic = problem.evaluate(r, s)
        y_measured = problem.evaluate_measured(r, s, horizon=6.0)
        # latency: no queueing, so measured ≈ analytic
        assert y_measured[0] == pytest.approx(y_analytic[0], rel=0.1, abs=0.01)
        # bandwidth within the encoder's inter-frame-gain envelope
        assert y_measured[2] == pytest.approx(y_analytic[2], rel=0.3)
        # computation matches closely (frames × flops over horizon)
        assert y_measured[3] == pytest.approx(y_analytic[3], rel=0.2)

    def test_schedule_is_zero_jitter_in_simulator(self):
        problem = EVAProblem(n_streams=5, bandwidths_mbps=[20.0, 30.0, 10.0])
        r = np.array([600.0, 900.0, 600.0, 300.0, 900.0])
        s = np.array([5.0, 10.0, 5.0, 15.0, 2.0])
        assignment, streams = problem.schedule(r, s)
        assert const2_satisfied(streams, assignment)
        report = simulate_schedule(
            [st.resolution for st in streams],
            [st.fps for st in streams],
            assignment,
            problem.bandwidths_mbps,
            horizon=8.0,
            profile=problem.profile,
            encoder=problem.encoder,
        )
        # residual jitter only from uplink serialization; compute queue is clean
        assert report.max_jitter < 0.06


class TestProfilerToSurrogateToDecision:
    """Profiling data measured from the detector pipeline trains a bank
    accurate enough to rank configurations correctly."""

    def test_bank_ranks_configs_like_truth(self):
        clip = generate_clip(SceneConfig(n_objects=10), n_frames=40, rng=0)
        samples = profile_grid(
            clip,
            resolutions=(300, 900, 1500, 2000),
            fps_values=(2, 10, 20, 30),
            rng=0,
        )
        x, y = samples_to_arrays(samples)
        bank = OutcomeSurrogateBank().fit(x, y, rng=0)
        mean, _ = bank.predict_per_stream([[400.0, 5.0], [1900.0, 28.0]])
        # higher config -> predicted higher accuracy and higher resources
        assert mean[1, 1] > mean[0, 1]
        assert mean[1, 2] > mean[0, 2]
        assert mean[1, 4] > mean[0, 4]


class TestPaMODecisionQuality:
    def test_pamo_decision_is_feasible_and_zero_jitter(self):
        problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = make_preference(problem)
        dm = DecisionMaker(pref, rng=0)
        out = PaMO(
            problem, dm, n_profile=30, n_outcome_space=15, n_pref_queries=6,
            batch_size=2, max_iters=4, n_pool=10, rng=0,
        ).optimize()
        d = out.decision
        assert problem.is_feasible(d.resolutions, d.fps)
        y_measured = problem.evaluate_measured(d.resolutions, d.fps, horizon=5.0)
        # the measured outcome should not be wildly worse than claimed
        assert y_measured[0] < d.outcome[0] * 2 + 0.05

    def test_learned_benefit_correlates_with_truth(self):
        problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = make_preference(problem, weights=[1, 2, 1, 0.5, 1.5])
        dm = DecisionMaker(pref, rng=1)
        pamo = PaMO(
            problem, dm, n_profile=30, n_outcome_space=20, n_pref_queries=12,
            batch_size=2, max_iters=3, n_pool=10, rng=1,
        )
        pamo.optimize()
        gen = np.random.default_rng(5)
        ys = np.stack(
            [problem.evaluate(*problem.sample_decision(gen)) for _ in range(25)]
        )
        learned = pamo.learner.utility(ys)
        truth = pref.value(ys)
        corr = np.corrcoef(learned, truth)[0, 1]
        assert corr > 0.7, f"learned/true benefit correlation {corr:.2f}"
