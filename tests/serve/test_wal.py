"""Write-ahead log: format, torn tails, specs, service integration."""

import json

import pytest

from repro.obs import telemetry
from repro.serve import (
    SchedulerService,
    ServeEvent,
    WriteAheadLog,
    build_service,
    read_wal,
    service_spec,
)
from repro.serve.wal import WAL_VERSION


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


def _spec(**kw):
    base = dict(n_streams=4, bandwidths_mbps=[15.0, 20.0], seed=7)
    base.update(kw)
    return service_spec(**base)


def _events():
    return [
        ServeEvent(time=0.5, kind="stream_join", target=100, value=1.1),
        ServeEvent(time=1.5, kind="stream_leave", target=0),
        ServeEvent(time=2.5, kind="bandwidth_drift", target=1, value=0.9),
    ]


class TestFileFormat:
    def test_create_writes_meta_first(self, tmp_path):
        p = tmp_path / "serve.wal"
        with WriteAheadLog.create(p, _spec()):
            pass
        first = json.loads(p.read_text().splitlines()[0])
        assert first["t"] == "meta"
        assert first["version"] == WAL_VERSION
        assert first["spec"]["n_streams"] == 4

    def test_round_trip_events_and_epochs(self, tmp_path):
        p = tmp_path / "serve.wal"
        evs = _events()
        with WriteAheadLog.create(p, _spec()) as wal:
            for i, e in enumerate(evs, start=1):
                wal.append_event(i, e)
            wal.append_epoch(epoch=0, mode="normal", full=True, sig="aa" * 8)
            wal.append_epoch(epoch=1, mode="brownout", full=False, sig="bb" * 8)
        contents = read_wal(p)
        assert contents.spec["seed"] == 7
        assert [s for s, _ in contents.events] == [1, 2, 3]
        assert [e.to_dict() for _, e in contents.events] == [
            e.to_dict() for e in evs
        ]
        assert contents.epochs[0] == ("normal", True, "aa" * 8)
        assert contents.epochs[1] == ("brownout", False, "bb" * 8)
        assert contents.last_seq == 3
        assert contents.torn_lines == 0

    def test_open_appends(self, tmp_path):
        p = tmp_path / "serve.wal"
        evs = _events()
        with WriteAheadLog.create(p, _spec()) as wal:
            wal.append_event(1, evs[0])
        with WriteAheadLog.open(p) as wal:
            wal.append_event(2, evs[1])
        assert read_wal(p).last_seq == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        p = tmp_path / "serve.wal"
        with WriteAheadLog.create(p, _spec()) as wal:
            for i, e in enumerate(_events(), start=1):
                wal.append_event(i, e)
        raw = p.read_bytes()
        p.write_bytes(raw[:-7])  # tear the last record mid-json
        contents = read_wal(p)
        assert [s for s, _ in contents.events] == [1, 2]
        assert contents.torn_lines == 1

    def test_seq_gap_truncates_suffix(self, tmp_path):
        p = tmp_path / "serve.wal"
        evs = _events()
        with WriteAheadLog.create(p, _spec()) as wal:
            wal.append_event(1, evs[0])
            wal.append_event(3, evs[1])  # gap: 2 is missing
            wal.append_event(4, evs[2])
        contents = read_wal(p)
        assert [s for s, _ in contents.events] == [1]

    def test_missing_or_bad_meta_raises(self, tmp_path):
        missing = tmp_path / "nope.wal"
        with pytest.raises(FileNotFoundError):
            read_wal(missing)
        bad = tmp_path / "bad.wal"
        bad.write_text('{"t": "ev", "seq": 1}\n')
        with pytest.raises(ValueError, match="meta"):
            read_wal(bad)

    def test_version_mismatch_raises(self, tmp_path):
        p = tmp_path / "serve.wal"
        p.write_text(json.dumps({"t": "meta", "version": 99, "spec": {}}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_wal(p)

    def test_sync_counter(self, tmp_path):
        telemetry.enable()
        p = tmp_path / "serve.wal"
        with WriteAheadLog.create(p, _spec()) as wal:
            wal.append_event(1, _events()[0])
            wal.sync()
            wal.sync()  # nothing unsynced: no-op, still counted once
        counters = telemetry.report()["counters"]
        assert counters.get("wal.syncs", 0) >= 1

    def test_batched_fsync_every_n(self, tmp_path):
        p = tmp_path / "serve.wal"
        wal = WriteAheadLog.create(p, _spec(), sync_every=2)
        try:
            wal.append_event(1, _events()[0])
            assert wal._unsynced == 1
            wal.append_event(2, _events()[1])
            assert wal._unsynced == 0  # hit the batch size -> fsynced
        finally:
            wal.close()


class TestServiceSpec:
    def test_spec_is_json_safe(self):
        spec = _spec(
            method="pcs",
            weights=[0.4, 0.3, 0.1, 0.1, 0.1],
            epoch_s=0.5,
            reoptimize_every=4,
            admission={"default_priority": 1},
            breaker={"failure_threshold": 2},
            slo=["decision_p95_s < 0.5"],
            remediation={"brownout_severity": "unhealthy"},
        )
        clone = json.loads(json.dumps(spec))
        assert clone == spec

    def test_build_service_round_trip(self):
        spec = _spec(
            breaker={"failure_threshold": 2, "cooldown_epochs": 3},
            admission={"default_priority": 2, "max_evictions_per_join": 1},
            remediation={"brownout_severity": "degraded"},
            slo=["decision_p95_s < 0.5"],
        )
        service = build_service(spec)
        assert isinstance(service, SchedulerService)
        assert service.breaker.failure_threshold == 2
        assert service.breaker.cooldown_epochs == 3
        assert service.admission.default_priority == 2
        assert service.remediation.brownout_severity == "degraded"
        assert service.monitor is not None

    def test_build_service_minimal(self):
        service = build_service(_spec())
        assert service.breaker is None
        assert service.remediation is None
        assert not service.started


class TestServiceIntegration:
    def test_submit_journals_before_queue(self, tmp_path):
        p = tmp_path / "serve.wal"
        spec = _spec()
        service = build_service(spec)
        with WriteAheadLog.create(p, spec) as wal:
            service.attach_wal(wal)
            assert service.submit(_events()) == 3
        contents = read_wal(p)
        assert contents.last_seq == 3
        assert len(service.queue) == 3
        assert service.wal_seq == 3

    def test_run_journals_epoch_records(self, tmp_path):
        p = tmp_path / "serve.wal"
        spec = _spec()
        service = build_service(spec)
        with WriteAheadLog.create(p, spec) as wal:
            service.attach_wal(wal)
            service.submit(_events())
            service.start()
            decisions = service.run()
        contents = read_wal(p)
        sigs = {d.epoch: d.sig_hash() for d in service.decisions}
        assert {d.epoch for d in decisions} <= set(sigs)
        for epoch, (mode, _full, sig) in contents.epochs.items():
            assert sigs[epoch] == sig
            assert mode == "normal"
        assert set(sigs) == set(contents.epochs)

    def test_checkpoint_excludes_wal_handle(self, tmp_path):
        import pickle

        p = tmp_path / "serve.wal"
        spec = _spec()
        service = build_service(spec)
        with WriteAheadLog.create(p, spec) as wal:
            service.attach_wal(wal)
            service.submit(_events())
            clone = pickle.loads(pickle.dumps(service))
        assert clone.wal is None
        assert clone.wal_seq == service.wal_seq
