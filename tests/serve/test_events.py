"""Serve events: validation, queue ordering, log round-trips, fault bridge."""

import pytest

from repro.resilience import FaultPlan
from repro.resilience.faults import FaultEvent
from repro.serve import EventLog, EventQueue, ServeEvent, from_fault


class TestServeEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown serve event kind"):
            ServeEvent(time=0.0, kind="explode", target=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            ServeEvent(time=-1.0, kind="stream_join", target=0)

    def test_bandwidth_factor_validated(self):
        with pytest.raises(ValueError, match="bandwidth factor"):
            ServeEvent(time=0.0, kind="bandwidth_drift", target=0, value=0.0)
        with pytest.raises(ValueError, match="bandwidth factor"):
            ServeEvent(time=0.0, kind="bandwidth_drift", target=0, value=1.5)

    def test_bandwidth_default_factor_is_restore(self):
        e = ServeEvent(time=0.0, kind="bandwidth_drift", target=1)
        assert e.value == 1.0

    def test_target_required_except_drift(self):
        with pytest.raises(ValueError, match="non-negative target"):
            ServeEvent(time=0.0, kind="stream_leave")
        assert ServeEvent(time=0.0, kind="drift").target == -1

    def test_join_texture_positive(self):
        with pytest.raises(ValueError, match="texture"):
            ServeEvent(time=0.0, kind="stream_join", target=9, value=-0.5)

    def test_dict_round_trip(self):
        e = ServeEvent(time=2.5, kind="stream_join", target=7, value=1.2)
        assert ServeEvent.from_dict(e.to_dict()) == e


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(ServeEvent(time=3.0, kind="drift"))
        q.push(ServeEvent(time=1.0, kind="stream_leave", target=0))
        q.push(ServeEvent(time=2.0, kind="server_up", target=1))
        assert [e.time for e in q] == [1.0, 2.0, 3.0]

    def test_ties_break_by_submission_order(self):
        q = EventQueue()
        a = ServeEvent(time=1.0, kind="stream_join", target=10)
        b = ServeEvent(time=1.0, kind="stream_leave", target=10)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_peek_does_not_consume(self):
        q = EventQueue([ServeEvent(time=1.0, kind="drift")])
        assert q.peek().time == 1.0
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestEventLog:
    def test_events_are_time_sorted(self):
        log = EventLog(
            events=(
                ServeEvent(time=5.0, kind="drift"),
                ServeEvent(time=1.0, kind="stream_leave", target=2),
            )
        )
        assert [e.time for e in log] == [1.0, 5.0]

    def test_json_round_trip(self, tmp_path):
        log = EventLog(
            events=(
                ServeEvent(time=1.0, kind="stream_join", target=6, value=0.9),
                ServeEvent(time=2.0, kind="bandwidth_drift", target=0, value=0.5),
            ),
            seed=42,
            n_streams=6,
            n_servers=4,
            horizon_s=3600.0,
        )
        path = log.save(tmp_path / "events.json")
        loaded = EventLog.load(path)
        assert loaded == log

    def test_save_is_byte_stable(self, tmp_path):
        log = EventLog(
            events=(ServeEvent(time=1.0, kind="drift"),), seed=0, n_streams=1,
            n_servers=1, horizon_s=10.0,
        )
        a = log.save(tmp_path / "a.json").read_text()
        b = log.save(tmp_path / "b.json").read_text()
        assert a == b


class TestFaultBridge:
    @pytest.mark.parametrize(
        "fault_kind,serve_kind",
        [
            ("server_crash", "server_down"),
            ("server_recover", "server_up"),
            ("stream_join", "stream_join"),
            ("stream_leave", "stream_leave"),
        ],
    )
    def test_kind_mapping(self, fault_kind, serve_kind):
        e = from_fault(FaultEvent(time=1.0, kind=fault_kind, target=0))
        assert e.kind == serve_kind
        assert e.target == 0

    def test_bandwidth_drop_keeps_factor(self):
        e = from_fault(
            FaultEvent(time=1.0, kind="bandwidth_drop", target=2, value=0.25)
        )
        assert e.kind == "bandwidth_drift"
        assert e.value == 0.25

    def test_bandwidth_restore_maps_to_unit_factor(self):
        e = from_fault(FaultEvent(time=1.0, kind="bandwidth_restore", target=2))
        assert e.kind == "bandwidth_drift"
        assert e.value == 1.0

    def test_from_fault_plan(self):
        plan = FaultPlan.random(
            n_servers=3, n_streams=5, horizon=10.0, n_faults=4, rng=0
        )
        log = EventLog.from_fault_plan(plan, n_streams=5, n_servers=3)
        assert len(log) == len(plan)
        assert all(e.kind in
                   ("stream_join", "stream_leave", "bandwidth_drift",
                    "server_down", "server_up", "drift")
                   for e in log)
