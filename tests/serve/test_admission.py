"""AdmissionController: priorities, eviction ordering, shedding, rollback."""

import pickle

import numpy as np
import pytest

from repro.core.problem import EVAProblem
from repro.obs import telemetry
from repro.serve import (
    AdmissionController,
    IncrementalPlanner,
    approx_preference,
    parse_priority_map,
)


def _planner(n_streams=2, n_servers=2, seed=0, bw=None):
    rng = np.random.default_rng(seed)
    problem = EVAProblem(
        n_streams,
        bw if bw is not None else rng.choice([10.0, 15.0, 20.0], size=n_servers),
        textures=rng.uniform(0.7, 1.3, size=n_streams),
    )
    planner = IncrementalPlanner.for_problem(
        problem, preference=approx_preference(problem)
    )
    planner.solve_all({i: float(problem.textures[i]) for i in range(n_streams)})
    return planner


def _fill(planner, start_sid=100, texture=1.0, limit=200):
    """Admit streams until the planner refuses (saturate capacity)."""
    sid = start_sid
    while planner.admit(sid, texture) is not None and sid < start_sid + limit:
        sid += 1
    assert sid < start_sid + limit, "planner never saturated"
    return sid  # first sid that did NOT fit


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


class TestPriorityMap:
    def test_parse_string(self):
        mapping, default = parse_priority_map("0=2, 7=1, default=3")
        assert mapping == {0: 2, 7: 1}
        assert default == 3

    def test_parse_mapping(self):
        mapping, default = parse_priority_map({"4": 9, "default": 1})
        assert mapping == {4: 9}
        assert default == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad priority-map entry"):
            parse_priority_map("nonsense")

    def test_priority_of(self):
        ctrl = AdmissionController(priority_map={3: 5}, default_priority=1)
        assert ctrl.priority_of(3) == 5
        assert ctrl.priority_of(99) == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"join_rate_per_epoch": 0.0},
            {"join_burst": 0.5, "join_rate_per_epoch": 1.0},
            {"max_queue_depth": -1},
            {"max_evictions_per_join": -1},
        ],
    )
    def test_bad_params(self, kw):
        with pytest.raises(ValueError):
            AdmissionController(**kw)


class TestPlainAdmission:
    def test_default_controller_matches_bare_planner(self):
        """No map, no bucket, no depth: admit iff planner.admit does."""
        a, b = _planner(seed=3), _planner(seed=3)
        ctrl = AdmissionController()
        sid = 100
        while True:
            direct = b.admit(sid, 1.0)
            out = ctrl.request_join(a, sid, 1.0)
            if direct is None:
                # No priorities -> nothing is ever evictable either.
                assert not out.admitted
                break
            assert out.admitted
            assert out.config == direct
            sid += 1
        assert sorted(a.entries) == sorted(b.entries)

    def test_min_config_admits_at_floor(self):
        planner = _planner()
        ctrl = AdmissionController()
        out = ctrl.request_join(planner, 50, 1.0, min_config=True)
        assert out.admitted
        r, s = out.config
        assert r == min(planner.config_space.resolutions)
        assert s == min(planner.config_space.fps_values)


class TestTokenBucket:
    def test_burst_then_shed(self):
        planner = _planner(n_servers=4, bw=[30.0] * 4)
        ctrl = AdmissionController(join_rate_per_epoch=1.0, join_burst=2.0)
        outs = [
            ctrl.request_join(planner, 100 + i, 1.0, epoch=5) for i in range(4)
        ]
        assert [o.action for o in outs] == [
            "admitted", "admitted", "shed", "shed",
        ]
        assert outs[2].reason == "token_bucket"

    def test_refill_over_epochs(self):
        planner = _planner(n_servers=4, bw=[30.0] * 4)
        ctrl = AdmissionController(join_rate_per_epoch=1.0, join_burst=1.0)
        assert ctrl.request_join(planner, 100, 1.0, epoch=0).admitted
        assert ctrl.request_join(planner, 101, 1.0, epoch=0).action == "shed"
        assert ctrl.request_join(planner, 102, 1.0, epoch=1).admitted

    def test_default_burst_is_twice_rate(self):
        ctrl = AdmissionController(join_rate_per_epoch=3.0)
        assert ctrl._bucket.burst == 6.0


class TestQueueDepthShedding:
    def test_sheds_over_depth(self):
        planner = _planner()
        ctrl = AdmissionController(max_queue_depth=10)
        out = ctrl.request_join(planner, 100, 1.0, queue_depth=11)
        assert out.action == "shed"
        assert out.reason == "queue_depth"
        assert ctrl.request_join(planner, 101, 1.0, queue_depth=10).admitted

    def test_shed_mode_overrides_depth(self):
        planner = _planner()
        ctrl = AdmissionController(max_queue_depth=1000)
        out = ctrl.request_join(planner, 100, 1.0, shed_mode=True)
        assert out.action == "shed"
        assert out.reason == "remediation"

    def test_protected_priority_bypasses_shedding(self):
        planner = _planner()
        ctrl = AdmissionController(
            priority_map={100: 5}, max_queue_depth=0, protect_priority=5
        )
        assert ctrl.request_join(planner, 100, 1.0, queue_depth=99).admitted
        assert (
            ctrl.request_join(planner, 101, 1.0, queue_depth=99).action
            == "shed"
        )


class TestEviction:
    def test_high_priority_evicts_lowest_score_victim(self):
        planner = _planner(n_streams=2, n_servers=2, bw=[10.0, 10.0])
        joiner = _fill(planner)
        scores = planner.eviction_scores()
        expected_victim = min(scores, key=lambda v: (scores[v], v))
        ctrl = AdmissionController(priority_map={joiner: 1})
        before = set(planner.entries)
        out = ctrl.request_join(planner, joiner, 1.0)
        assert out.admitted
        assert out.reason == "evicted_lower_priority"
        assert out.evicted[0] == expected_victim
        assert joiner in planner.entries
        assert set(out.evicted) <= before

    def test_never_evicts_equal_or_higher_class(self):
        planner = _planner(n_streams=2, n_servers=2, bw=[10.0, 10.0])
        joiner = _fill(planner)
        # Everyone at the same (default) priority: no victims exist.
        ctrl = AdmissionController()
        out = ctrl.request_join(planner, joiner, 1.0)
        assert out.action == "rejected"
        assert out.reason == "no_lower_priority"
        assert joiner not in planner.entries

    def test_eviction_respects_class_order(self):
        planner = _planner(n_streams=2, n_servers=2, bw=[10.0, 10.0])
        joiner = _fill(planner)
        resident = sorted(planner.entries)
        # Half the residents are class 1, half class 0; a class-2 joiner
        # must consume class-0 victims before touching class 1.
        pmap = {sid: (1 if i % 2 else 0) for i, sid in enumerate(resident)}
        pmap[joiner] = 2
        ctrl = AdmissionController(priority_map=pmap)
        out = ctrl.request_join(planner, joiner, 1.0)
        assert out.admitted
        classes = [pmap[v] for v in out.evicted]
        assert classes == sorted(classes), "victims not lowest-class-first"

    def test_zero_eviction_budget_never_removes(self):
        planner = _planner(n_streams=2, n_servers=2, bw=[10.0, 10.0])
        joiner = _fill(planner, texture=1.0)
        before = {
            sid: (e.resolution, e.fps) for sid, e in planner.entries.items()
        }
        ctrl = AdmissionController(
            priority_map={joiner: 1}, max_evictions_per_join=0
        )
        out = ctrl.request_join(planner, joiner, 1.0)
        assert out.action == "rejected"
        assert out.reason == "no_fit"
        after = {
            sid: (e.resolution, e.fps) for sid, e in planner.entries.items()
        }
        assert after == before

    def test_failed_eviction_restores_configs(self):
        """A joiner that never fits rolls every victim back."""

        class _BlockJoiner:
            """Planner proxy that refuses one sid (forces rollback)."""

            def __init__(self, inner, blocked):
                self._inner = inner
                self._blocked = blocked

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def admit(self, sid, texture):
                if sid == self._blocked:
                    return None
                return self._inner.admit(sid, texture)

            def add_stream(self, sid, texture, r, s):
                if sid == self._blocked:
                    return False
                return self._inner.add_stream(sid, texture, r, s)

        planner = _planner(n_streams=2, n_servers=2, bw=[10.0, 10.0])
        joiner = _fill(planner)
        before = {
            sid: (e.texture, e.resolution, e.fps)
            for sid, e in planner.entries.items()
        }
        ctrl = AdmissionController(
            priority_map={joiner: 9}, max_evictions_per_join=2
        )
        out = ctrl.request_join(_BlockJoiner(planner, joiner), joiner, 1.0)
        assert out.action == "rejected"
        assert out.reason == "eviction_budget"
        after = {
            sid: (e.texture, e.resolution, e.fps)
            for sid, e in planner.entries.items()
        }
        assert after == before
        assert out.dropped == []


class TestEvictionScores:
    def test_scores_cover_all_streams(self):
        planner = _planner(n_streams=4, n_servers=3)
        scores = planner.eviction_scores()
        assert set(scores) == set(planner.entries)

    def test_empty_planner_scores_empty(self):
        planner = _planner()
        for sid in list(planner.entries):
            planner.remove_stream(sid)
        assert planner.eviction_scores() == {}

    def test_scores_deterministic(self):
        a = _planner(n_streams=4, n_servers=3, seed=7)
        b = _planner(n_streams=4, n_servers=3, seed=7)
        assert a.eviction_scores() == b.eviction_scores()

    def test_scores_require_preference(self):
        planner = _planner()
        planner.preference = None
        with pytest.raises(ValueError, match="preference"):
            planner.eviction_scores()

    def test_scores_divide_by_utilization(self):
        """Scores are per unit utilization: score * util is finite benefit."""
        planner = _planner(n_streams=3, n_servers=3)
        scores = planner.eviction_scores()
        for sid, score in scores.items():
            assert np.isfinite(score)
            assert np.isfinite(score * planner.utilization_of(sid))


class TestSnapshotRoundTrip:
    def test_snapshot_from_spec(self):
        ctrl = AdmissionController(
            priority_map={1: 2, 5: 1},
            default_priority=1,
            join_rate_per_epoch=2.0,
            join_burst=5.0,
            max_queue_depth=32,
            protect_priority=2,
            max_evictions_per_join=3,
        )
        clone = AdmissionController.from_spec(ctrl.snapshot())
        assert clone.snapshot() == ctrl.snapshot()
        assert clone.priority_of(5) == 1
        assert clone.priority_of(99) == 1

    def test_pickles(self):
        ctrl = AdmissionController(join_rate_per_epoch=1.0)
        planner = _planner()
        ctrl.request_join(planner, 100, 1.0, epoch=3)
        clone = pickle.loads(pickle.dumps(ctrl))
        assert clone._bucket.last_epoch == 3
