"""Crash recovery: checkpoint + WAL replay is exactly-once, bit-identical.

The in-process tests drive :func:`repro.serve.wal.recover_service`
directly; the subprocess tests prove the operational story end to end —
``repro serve run --wal --checkpoint`` SIGKILLed mid-flight recovers
bit-identically via ``repro serve recover``, and SIGTERM drains
gracefully with exit code 0.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import telemetry
from repro.serve import (
    ServeEvent,
    WriteAheadLog,
    build_service,
    recover_service,
    service_spec,
)

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


def _spec():
    return service_spec(n_streams=5, bandwidths_mbps=[15.0, 20.0, 10.0], seed=3)


def _events():
    evs = []
    for i in range(8):
        evs.append(
            ServeEvent(time=0.5 + i, kind="stream_join", target=100 + i, value=1.0)
        )
        if i % 2:
            evs.append(ServeEvent(time=0.7 + i, kind="stream_leave", target=i // 2))
    evs.append(ServeEvent(time=4.2, kind="bandwidth_drift", target=1, value=0.8))
    evs.append(ServeEvent(time=6.2, kind="server_down", target=2))
    evs.append(ServeEvent(time=8.2, kind="server_up", target=2))
    return evs


def _journaled_run(tmp_path, *, max_epochs=None, checkpoint=None):
    """One serve run writing a WAL; returns (service, wal_path)."""
    wal_path = tmp_path / "serve.wal"
    service = build_service(_spec())
    with WriteAheadLog.create(wal_path, _spec()) as wal:
        service.attach_wal(wal)
        service.submit(_events())
        service.start()
        service.run(max_epochs=max_epochs, checkpoint_path=checkpoint)
    return service, wal_path


def _sigs(service):
    return [(d.epoch, d.sig_hash()) for d in service.decisions]


class TestRecoverService:
    def test_fresh_rebuild_is_bit_identical(self, tmp_path):
        golden, wal_path = _journaled_run(tmp_path)
        recovered, info = recover_service(wal_path)
        assert not info.from_checkpoint
        assert info.replayed_events == len(_events())
        recovered.run()
        assert info.verify(recovered) == []
        assert _sigs(recovered) == _sigs(golden)

    def test_checkpoint_plus_suffix_replay(self, tmp_path):
        ckpt = tmp_path / "serve.ckpt"
        golden, _ = _journaled_run(tmp_path / "golden")
        (tmp_path / "crash").mkdir()
        crashed, wal_path = _journaled_run(
            tmp_path / "crash", max_epochs=3, checkpoint=ckpt
        )
        assert len(crashed.decisions) < len(golden.decisions)  # mid-run
        recovered, info = recover_service(wal_path, checkpoint=ckpt)
        assert info.from_checkpoint
        assert info.replayed_events == 0  # every event was pre-checkpoint
        recovered.run()
        assert info.verify(recovered) == []
        assert _sigs(recovered) == _sigs(golden)

    def test_recovery_is_idempotent(self, tmp_path):
        _, wal_path = _journaled_run(tmp_path)
        a, _ = recover_service(wal_path)
        b, _ = recover_service(wal_path)
        a.run()
        b.run()
        assert _sigs(a) == _sigs(b)

    def test_verify_flags_divergence(self, tmp_path):
        _, wal_path = _journaled_run(tmp_path)
        recovered, info = recover_service(wal_path)
        recovered.run()
        epoch = max(info.recorded)
        info.recorded[epoch] = "0" * 16  # corrupt one journaled sig
        mismatches = info.verify(recovered)
        assert len(mismatches) == 1
        assert mismatches[0]["epoch"] == epoch

    def test_torn_tail_still_recovers(self, tmp_path):
        _, wal_path = _journaled_run(tmp_path)
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[:-9])  # crash tore the last record
        recovered, info = recover_service(wal_path)
        assert info.torn_lines == 1
        recovered.run()
        assert info.verify(recovered) == []


def _cli(*args):
    return [
        sys.executable,
        "-m",
        "repro",
        *args,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


RUN_FLAGS = [
    "--streams", "5",
    "--servers", "3",
    "--seed", "11",
    "--hours", "0.2",
    "--arrivals-per-hour", "400",
    "--departures-per-hour", "200",
    "--epoch", "2.0",
]


class TestCrashRecoveryCli:
    def test_sigkill_then_recover_bit_identical(self, tmp_path):
        wal = tmp_path / "serve.wal"
        ckpt = tmp_path / "serve.ckpt"
        proc = subprocess.Popen(
            _cli(
                "serve", "run", *RUN_FLAGS,
                "--wal", str(wal),
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "10",
                "--pace", "0.01",
            ),
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            cwd=str(tmp_path),
        )
        # Let it journal some epochs, then pull the plug.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if wal.exists() and wal.stat().st_size > 4096:
                break
            if proc.poll() is not None:
                out = proc.stdout.read().decode()
                pytest.fail(f"serve run exited early:\n{out}")
            time.sleep(0.05)
        proc.kill()  # SIGKILL: no handlers, no final sync
        proc.wait(timeout=30)
        assert wal.exists()

        result = subprocess.run(
            _cli(
                "serve", "recover",
                "--wal", str(wal),
                *(["--checkpoint", str(ckpt)] if ckpt.exists() else []),
            ),
            env=_env(),
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(tmp_path),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "bit-identical" in result.stdout

    def test_sigterm_drains_gracefully(self, tmp_path):
        wal = tmp_path / "serve.wal"
        ckpt = tmp_path / "serve.ckpt"
        proc = subprocess.Popen(
            _cli(
                "serve", "run", *RUN_FLAGS,
                "--wal", str(wal),
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "10",
                "--pace", "0.05",
            ),
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            cwd=str(tmp_path),
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if wal.exists() and wal.stat().st_size > 1024:
                break
            if proc.poll() is not None:
                out = proc.stdout.read().decode()
                pytest.fail(f"serve run exited early:\n{out}")
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out.decode()
        # Drain left a final checkpoint behind: resume-able, not a crash.
        assert ckpt.exists()
