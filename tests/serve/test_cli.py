"""CLI serve family: loadgen -> run -> report, gates, trace compat."""

import json

import pytest

from repro.cli import main
from repro.obs import telemetry


LOADGEN = [
    "serve", "loadgen",
    "--streams", "5", "--servers", "3",
    "--hours", "0.05",
    "--arrivals-per-hour", "300",
    "--departures-per-hour", "200",
    "--drifts-per-hour", "40",
    "--flaps-per-hour", "20",
    "--seed", "0",
]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture
def event_log(tmp_path):
    path = tmp_path / "events.json"
    assert main(LOADGEN + ["-o", str(path)]) == 0
    return path


class TestLoadgen:
    def test_writes_replayable_log(self, event_log, capsys):
        from repro.serve import EventLog

        log = EventLog.load(event_log)
        assert len(log) > 5
        assert log.n_streams == 5 and log.n_servers == 3

    def test_unwritable_output_errors(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        rc = main(LOADGEN + ["-o", str(blocker / "e.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestServeRun:
    def test_replay_prints_summary(self, event_log, capsys):
        rc = main(["serve", "run", "--events", str(event_log), "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve run:" in out
        assert "full solves" in out
        assert "decision latency" in out

    def test_inline_loadgen_when_no_events(self, capsys):
        rc = main(
            [
                "serve", "run", "--streams", "4", "--servers", "3",
                "--hours", "0.02", "--arrivals-per-hour", "300",
                "--departures-per-hour", "200", "--seed", "1",
            ]
        )
        assert rc == 0
        assert "serve run:" in capsys.readouterr().out

    def test_method_flag_uses_registry(self, event_log, capsys):
        rc = main(
            [
                "serve", "run", "--events", str(event_log),
                "--method", "greedy", "--seed", "0",
            ]
        )
        assert rc == 0
        assert "method greedy" in capsys.readouterr().out

    def test_checkpoint_then_resume(self, event_log, tmp_path, capsys):
        ckpt = tmp_path / "serve.ckpt"
        rc = main(
            [
                "serve", "run", "--events", str(event_log),
                "--max-epochs", "2", "--checkpoint", str(ckpt), "--seed", "0",
            ]
        )
        assert rc == 0
        assert ckpt.exists()
        rc = main(["serve", "run", "--resume", str(ckpt)])
        assert rc == 0
        assert "resuming serve run" in capsys.readouterr().out

    def test_resume_missing_checkpoint_errors(self, tmp_path, capsys):
        rc = main(["serve", "run", "--resume", str(tmp_path / "nope.ckpt")])
        assert rc == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_bandwidth_mismatch_errors(self, capsys):
        rc = main(
            ["serve", "run", "--streams", "3", "--servers", "2",
             "--bandwidths", "10", "--hours", "0.01"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestServeReport:
    @pytest.fixture
    def trace(self, event_log, tmp_path):
        path = tmp_path / "serve.jsonl"
        assert main(
            [
                "serve", "run", "--events", str(event_log),
                "--telemetry", str(path), "--seed", "0",
            ]
        ) == 0
        return path

    def test_report_renders_summary(self, trace, capsys):
        capsys.readouterr()
        assert main(["serve", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "decision latency" in out
        assert "full solves" in out

    def test_json_format(self, trace, capsys):
        capsys.readouterr()
        assert main(["serve", "report", str(trace), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["epochs"] > 0
        assert data["decision_count"] == data["epochs"]
        assert data["full_solves"] >= 1

    def test_p95_gate_passes_with_slack(self, trace, capsys):
        assert main(["serve", "report", str(trace), "--max-p95", "60"]) == 0
        assert "within" in capsys.readouterr().out

    def test_p95_gate_fails_when_over_budget(self, trace, capsys):
        rc = main(["serve", "report", str(trace), "--max-p95", "1e-12"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err

    def test_empty_log_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["serve", "report", str(empty)])
        assert rc == 2
        assert "no serve events" in capsys.readouterr().err

    def test_generic_report_and_trace_understand_serve_logs(self, trace, capsys):
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "serve.decision" in out
        assert "serve.replans" in out
        assert main(["trace", str(trace)]) == 0
