"""Serve-loop observability: registry wiring, health, top, CLI e2e."""

import json
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.core.problem import EVAProblem
from repro.obs import (
    HealthMonitor,
    JsonlSink,
    MetricsRegistry,
    MetricsServer,
    SloRule,
    render_prometheus,
    telemetry,
)
from repro.serve import (
    DECISION_WINDOW,
    SchedulerService,
    ServeEvent,
    approx_preference,
    render_top,
    run_top,
    summarize_serve_run,
)


def _problem(n_streams=6, n_servers=4, seed=0):
    rng = np.random.default_rng(seed)
    return EVAProblem(
        n_streams,
        rng.choice([10.0, 15.0, 20.0, 25.0], size=n_servers),
        textures=rng.uniform(0.7, 1.3, size=n_streams),
    )


def _service(problem=None, **kw):
    problem = problem or _problem()
    return SchedulerService(
        problem, preference=approx_preference(problem), **kw
    )


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.attach_metrics(None)
    telemetry.disable()
    telemetry.reset()


def _churn(n=6):
    events = []
    for i in range(n):
        events.append(ServeEvent(time=float(i + 1), kind="stream_leave", target=i % 3))
        events.append(ServeEvent(time=float(i + 1) + 0.4, kind="stream_join", target=i % 3))
    return events


class TestServiceWiring:
    def test_registry_populated_by_run(self):
        svc = _service()
        reg = MetricsRegistry()
        svc.attach_observability(metrics=reg)
        svc.submit(_churn())
        svc.run()
        d = reg.to_dict()
        assert d["repro_serve_epochs_total"]["value"] == len(svc.decisions)
        assert d["repro_serve_streams"]["value"] == len(svc.planner.entries)
        hist = d["repro_serve_decision_latency_seconds"]
        assert hist["count"] == len(svc.decisions)
        assert hist["window"]["p95"] >= hist["window"]["p50"] >= 0.0
        assert d["repro_serve_cache_hit_ratio"]["value"] == pytest.approx(
            svc.health_snapshot()["cache_hit_ratio"]
        )

    def test_metrics_match_prometheus_text(self):
        svc = _service()
        reg = MetricsRegistry()
        svc.attach_observability(metrics=reg)
        svc.submit(_churn())
        svc.run()
        text = render_prometheus(reg)
        assert (
            f"repro_serve_epochs_total {len(svc.decisions)}" in text
        )
        assert 'repro_serve_decision_latency_seconds_bucket{le="+Inf"}' in text

    def test_health_snapshot_matches_summary_window(self):
        svc = _service()
        svc.submit(_churn())
        svc.run()
        snap = svc.health_snapshot()
        s = svc.summary()
        assert snap["window"] == s["decision_window"]
        assert snap["decision_p50_s"] == s["decision_p50_s"]
        assert snap["decision_p95_s"] == s["decision_p95_s"]
        assert snap["decision_p99_s"] == s["decision_p99_s"]

    def test_checkpoint_roundtrip_drops_registry_keeps_monitor(self, tmp_path):
        import pickle

        svc = _service()
        svc.attach_observability(
            metrics=MetricsRegistry(),
            monitor=HealthMonitor([SloRule.parse("decision_p95_s < 10")]),
        )
        svc.submit(_churn())
        svc.run()
        clone = pickle.loads(pickle.dumps(svc))
        assert clone.metrics is None
        assert clone.monitor is not None
        assert clone.summary()["decision_window"] == svc.summary()["decision_window"]


class TestHealthAndAlerts:
    def test_fault_plan_trips_alert_and_degraded_healthz(self):
        # An impossible cache-hit SLO fires deterministically; the
        # /healthz surface and the alert edge must both reflect it.
        svc = _service()
        reg = MetricsRegistry()
        monitor = HealthMonitor(
            [SloRule(metric="cache_hit_ratio", op=">", threshold=2.0)]
        )
        svc.attach_observability(metrics=reg, monitor=monitor)
        svc.submit(
            [
                ServeEvent(time=1.0, kind="server_down", target=0),
                ServeEvent(time=2.0, kind="stream_leave", target=1),
            ]
        )
        svc.run()
        assert any(a["event"] == "alert.fired" for a in svc.alerts)
        doc = svc.health_status()
        assert doc["status"] == "degraded"
        assert doc["alerts"][0]["metric"] == "cache_hit_ratio"
        assert svc.summary()["health"] == "degraded"
        assert reg.gauge("serve_health").value == 1.0

    def test_alert_events_reach_telemetry(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        telemetry.enable(JsonlSink(path))
        svc = _service()
        svc.attach_observability(
            monitor=HealthMonitor(
                [SloRule(metric="decision_p95_s", op="<", threshold=-1.0)]
            )
        )
        svc.submit(_churn())
        svc.run()
        telemetry.disable()
        kinds = [
            rec["event"]
            for rec in (json.loads(l) for l in path.read_text().splitlines() if l)
        ]
        assert "alert.fired" in kinds

    def test_healthy_run_stays_ok(self):
        svc = _service()
        svc.attach_observability(
            monitor=HealthMonitor([SloRule.parse("decision_p95_s < 60")])
        )
        svc.submit(_churn())
        svc.run()
        assert svc.alerts == []
        assert svc.health_status()["status"] == "ok"


class TestSummaryReportAgreement:
    def test_summary_and_report_share_percentile_definition(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        telemetry.enable(JsonlSink(path))
        svc = _service()
        svc.submit(_churn(8))
        svc.run()
        s = svc.summary()
        telemetry.disable()
        rep = summarize_serve_run(path)
        assert rep.decision_count == s["epochs"]
        assert rep.decision_window == s["decision_window"]
        assert rep.decision_window <= DECISION_WINDOW
        # The shared contract is the definition — exact percentiles over
        # the most recent DECISION_WINDOW epochs — not bit equality: the
        # span and latency_s bracket slightly different code.  Both must
        # be internally consistent and of the same scale.
        for side in (rep.to_dict(), s):
            assert (
                side["decision_p50_s"]
                <= side["decision_p95_s"]
                <= side["decision_p99_s"]
                <= side["decision_max_s"]
            )
        assert rep.decision_max_s < 10.0
        assert s["decision_max_s"] < 10.0


class TestVarzAndTop:
    def _varz(self):
        svc = _service()
        reg = MetricsRegistry()
        svc.attach_observability(
            metrics=reg,
            monitor=HealthMonitor([SloRule.parse("decision_p95_s < 60")]),
        )
        svc.submit(_churn())
        svc.run()
        return {
            "metrics": reg.to_dict(),
            "health": svc.health_status(),
            "service": svc.varz(),
        }

    def test_render_top_shows_live_numbers(self):
        varz = self._varz()
        frame = render_top(varz, color=False)
        snap = varz["service"]["snapshot"]
        assert "health OK" in frame
        assert f"epoch {snap['epoch']}" in frame
        assert f"{snap['cache_hit_ratio']:8.1%}" in frame
        assert "no alerts firing" in frame

    def test_render_top_alert_section(self):
        varz = self._varz()
        varz["health"]["status"] = "degraded"
        varz["health"]["alerts"] = [
            {
                "rule": "latency", "metric": "decision_p95_s",
                "severity": "degraded", "threshold": 0.1,
                "value": 0.5, "since_epoch": 2,
            }
        ]
        frame = render_top(varz, color=True)
        assert "ALERTS (1 firing)" in frame
        assert "decision_p95_s=0.5" in frame
        assert "\x1b[33m" in frame  # degraded renders yellow

    def test_run_top_against_live_server(self):
        import io

        svc = _service()
        reg = MetricsRegistry()
        svc.attach_observability(metrics=reg)
        svc.submit(_churn())
        svc.run()
        out = io.StringIO()
        with MetricsServer(
            reg, health=svc.health_status, varz=svc.varz
        ) as server:
            rc = run_top(
                server.url, interval_s=0.01, iterations=2,
                color=False, clear=False, stream=out,
            )
        assert rc == 0
        assert out.getvalue().count("repro serve top") == 2

    def test_run_top_unreachable_exits_1(self):
        import io

        out = io.StringIO()
        rc = run_top(
            "http://127.0.0.1:1", interval_s=0.01, iterations=1,
            color=False, clear=False, stream=out,
        )
        assert rc == 1
        assert "cannot reach" in out.getvalue()


class TestCliEndToEnd:
    def test_metrics_port_serves_during_run(self, tmp_path, capsys):
        # An in-process CLI run with --pace long enough to scrape would
        # race; instead run to completion with port=0 and assert the
        # printed URL, then e2e-scrape via the service objects directly
        # (subprocess coverage lives in the metrics-smoke CI job).
        rc = main(
            [
                "serve", "run", "--streams", "4", "--servers", "3",
                "--hours", "0.02", "--arrivals-per-hour", "300",
                "--departures-per-hour", "200", "--seed", "1",
                "--metrics-port", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "/metrics" in out
        assert "health" in out

    def test_bad_slo_rule_exits_2(self, capsys):
        rc = main(
            [
                "serve", "run", "--streams", "4", "--servers", "3",
                "--hours", "0.01", "--metrics-port", "0",
                "--slo", "not a rule at all",
            ]
        )
        assert rc == 2
        assert "slo" in capsys.readouterr().err.lower()

    def test_custom_slo_rule_applied(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        rc = main(
            [
                "serve", "run", "--streams", "4", "--servers", "3",
                "--hours", "0.02", "--arrivals-per-hour", "300",
                "--departures-per-hour", "200", "--seed", "1",
                "--metrics-port", "0",
                "--slo", "impossible: cache_hit_ratio > 2",
                "--telemetry", str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "health" in out
        rep = summarize_serve_run(trace)
        assert rep.alerts_fired >= 1

    def test_telemetry_rotation_flags(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        rc = main(
            [
                "serve", "run", "--streams", "4", "--servers", "3",
                "--hours", "0.05", "--arrivals-per-hour", "600",
                "--departures-per-hour", "400", "--seed", "2",
                "--telemetry", str(trace),
                "--telemetry-max-mb", "0.002", "--telemetry-backups", "8",
            ]
        )
        assert rc == 0
        assert (tmp_path / "serve.jsonl.1").exists()
        # The report stitches rotated segments back together.
        rep = summarize_serve_run(trace)
        assert rep.epochs > 0
