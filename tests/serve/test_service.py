"""SchedulerService: determinism, cache invalidation, counters, churn."""

import numpy as np
import pytest

from repro.core.problem import EVAProblem
from repro.obs import telemetry
from repro.serve import (
    ChurnProfile,
    RegistryFactory,
    SchedulerService,
    ServeEvent,
    approx_preference,
    generate_load,
)


def _problem(n_streams=6, n_servers=4, seed=0):
    rng = np.random.default_rng(seed)
    return EVAProblem(
        n_streams,
        rng.choice([10.0, 15.0, 20.0, 25.0], size=n_servers),
        textures=rng.uniform(0.7, 1.3, size=n_streams),
    )


def _service(problem=None, **kw):
    problem = problem or _problem()
    return SchedulerService(
        problem, preference=approx_preference(problem), **kw
    )


def _signatures(service):
    return [d.signature() for d in service.decisions]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.disable()
    telemetry.reset()


class TestLifecycle:
    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError, match="epoch_s"):
            _service(epoch_s=0.0)
        with pytest.raises(ValueError, match="reoptimize_every"):
            _service(reoptimize_every=-1)

    def test_start_is_warmup_full_solve(self):
        svc = _service()
        d = svc.start()
        assert d.epoch == 0
        assert d.full_solve
        assert d.cache_hits == 0
        assert d.stream_ids == list(range(6))
        assert d.benefit is not None

    def test_double_start_raises(self):
        svc = _service()
        svc.start()
        with pytest.raises(RuntimeError, match="already started"):
            svc.start()

    def test_run_autostarts(self):
        svc = _service()
        svc.submit([ServeEvent(time=0.5, kind="stream_leave", target=0)])
        svc.run()
        assert svc.started
        assert svc.decisions[0].epoch == 0

    def test_epoch_clock_batches_same_epoch_events(self):
        svc = _service(epoch_s=2.0)
        svc.submit(
            [
                ServeEvent(time=0.2, kind="stream_leave", target=0),
                ServeEvent(time=1.8, kind="stream_leave", target=1),
                ServeEvent(time=2.5, kind="stream_leave", target=2),
            ]
        )
        made = svc.run()
        # warm-up happens in run(); the two t<2 events share epoch 1.
        assert [d.epoch for d in made] == [1, 2]
        assert len(made[0].events) == 2

    def test_summary_reports_latency_and_counts(self):
        svc = _service()
        svc.start()
        svc.submit([ServeEvent(time=0.5, kind="drift")])
        svc.run()
        s = svc.summary()
        assert s["epochs"] == 2
        assert s["full_solves"] == 2  # warm-up + drift
        assert s["decision_p95_s"] >= s["decision_p50_s"] >= 0.0
        assert s["n_streams"] == 6


class TestDeterminism:
    PROFILE = ChurnProfile(
        hours=0.05,
        arrivals_per_hour=400.0,
        departures_per_hour=300.0,
        drifts_per_hour=60.0,
        flaps_per_hour=30.0,
    )

    def _run(self, log, *, split_at=None, checkpoint_path=None):
        svc = _service(_problem())
        svc.start()
        svc.submit(log)
        if split_at is None:
            svc.run()
            return _signatures(svc)
        svc.run(max_epochs=split_at)
        svc.save_checkpoint(checkpoint_path)
        resumed = SchedulerService.resume(checkpoint_path)
        resumed.run()
        return _signatures(resumed)

    def test_same_seed_same_decisions(self):
        log = generate_load(6, 4, profile=self.PROFILE, seed=9)
        assert len(log) > 5
        assert self._run(log) == self._run(log)

    def test_signature_ignores_latency(self):
        svc = _service()
        d = svc.start()
        sig = d.signature()
        d.latency_s = 123.0
        assert d.signature() == sig

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        log = generate_load(6, 4, profile=self.PROFILE, seed=9)
        straight = self._run(log)
        resumed = self._run(
            log, split_at=3, checkpoint_path=tmp_path / "serve.ckpt"
        )
        assert len(straight) > 4
        assert resumed == straight

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        import pickle

        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"meta": {"kind": "bo"}}))
        with pytest.raises((ValueError, KeyError, TypeError, pickle.PickleError)):
            SchedulerService.resume(path)


class TestCacheInvalidation:
    """Each delta kind invalidates exactly the decisions it touches."""

    def _one(self, event, **kw):
        svc = _service(**kw)
        svc.start()
        svc.submit([event])
        (d,) = svc.run()
        return svc, d

    def test_join_touches_only_the_joiner(self):
        svc, d = self._one(
            ServeEvent(time=0.5, kind="stream_join", target=50, value=1.0)
        )
        assert not d.full_solve
        assert d.solved + len(d.rejected) == 1
        # every pre-existing decision was served from cache
        assert d.cache_hits == len(svc.planner.entries) - d.solved

    def test_leave_touches_only_the_leaver(self):
        svc, d = self._one(ServeEvent(time=0.5, kind="stream_leave", target=0))
        assert not d.full_solve
        assert 0 not in svc.planner.entries
        assert d.cache_hits == len(svc.planner.entries)

    def test_bandwidth_drift_keeps_all_configs_cached(self):
        svc, d = self._one(
            ServeEvent(time=0.5, kind="bandwidth_drift", target=1, value=0.5)
        )
        assert not d.full_solve
        assert d.cache_hits == len(svc.planner.entries)
        assert svc.planner.effective_bw()[1] == pytest.approx(
            svc.planner.nominal_bw[1] * 0.5
        )

    def test_server_down_invalidates_only_evicted(self):
        svc, d = self._one(ServeEvent(time=0.5, kind="server_down", target=0))
        assert not d.full_solve
        assert not svc.planner.alive[0]
        assert d.cache_hits == len(svc.planner.entries)

    def test_server_up_keeps_cache(self):
        svc = _service()
        svc.start()
        svc.submit(
            [
                ServeEvent(time=0.5, kind="server_down", target=0),
                ServeEvent(time=1.5, kind="server_up", target=0),
            ]
        )
        _, d = svc.run()
        assert not d.full_solve
        assert svc.planner.alive[0]
        assert d.cache_hits == len(svc.planner.entries)

    def test_drift_invalidates_everything(self):
        svc, d = self._one(ServeEvent(time=0.5, kind="drift"))
        assert d.full_solve
        assert d.cache_hits == 0
        assert d.solved == len(svc.planner.entries)

    def test_reoptimize_every_forces_full_solves(self):
        svc = _service(reoptimize_every=1)
        svc.start()
        svc.submit(
            [
                ServeEvent(time=0.5, kind="stream_leave", target=0),
                ServeEvent(time=1.5, kind="stream_leave", target=1),
            ]
        )
        made = svc.run()
        assert all(d.full_solve for d in made)


class TestCounters:
    def test_serve_counters_accumulate(self):
        telemetry.reset()
        telemetry.enable(None)
        svc = _service()
        svc.start()
        svc.submit(
            [
                ServeEvent(time=0.5, kind="stream_join", target=77, value=1.0),
                ServeEvent(time=1.5, kind="drift"),
            ]
        )
        svc.run()
        counters = telemetry.report()["counters"]
        assert counters["serve.replans"] == 3
        assert counters["serve.full_solves"] == 2
        assert counters["serve.events"] == 2
        assert counters.get("serve.cache_hits", 0) >= 1
        assert counters["serve.solved"] >= svc.problem.n_streams

    def test_decision_events_logged(self):
        from repro.obs.sinks import MemorySink

        sink = MemorySink()
        telemetry.reset()
        telemetry.enable(sink)
        svc = _service()
        svc.start()
        records = [r for r in sink.records if r.get("event") == "serve.decision"]
        assert len(records) == 1
        assert records[0]["full_solve"] is True
        assert records[0]["n_streams"] == 6


class TestFactoryPath:
    def test_registry_factory_runs_warmup_and_drift(self):
        problem = _problem()
        factory = RegistryFactory(
            "greedy", approx_preference(problem), seed=0
        )
        svc = SchedulerService(
            problem,
            preference=approx_preference(problem),
            scheduler_factory=factory,
        )
        svc.start()
        assert svc.last_decision is not None
        svc.submit([ServeEvent(time=0.5, kind="drift")])
        (d,) = svc.run()
        assert d.full_solve
        assert d.cache_hits == 0

    def test_factory_sees_churned_topology(self):
        problem = _problem()
        seen = []

        def factory(prob, epoch=0):
            seen.append(prob)
            from repro.serve.greedy import GreedyScheduler

            return GreedyScheduler(prob, preference=approx_preference(problem))

        svc = SchedulerService(
            problem, preference=approx_preference(problem),
            scheduler_factory=factory, reuse_scheduler=False,
        )
        svc.start()
        assert seen[0] is problem  # pristine topology: original object
        svc.submit(
            [
                ServeEvent(time=0.5, kind="stream_leave", target=0),
                ServeEvent(time=1.5, kind="drift"),
            ]
        )
        svc.run()
        assert seen[1] is not problem
        assert seen[1].n_streams == problem.n_streams - 1


class TestChurnAtScale:
    def test_incremental_only_after_warmup(self):
        """The ISSUE acceptance shape, scaled to test-suite budget:
        seeded churn completes with exactly the warm-up full solve."""
        problem = _problem(n_streams=120, n_servers=12, seed=2)
        profile = ChurnProfile(
            hours=0.2,
            arrivals_per_hour=600.0,
            departures_per_hour=600.0,
            drifts_per_hour=80.0,
            flaps_per_hour=10.0,
        )
        log = generate_load(120, 12, profile=profile, seed=11)
        assert len(log) > 200
        svc = _service(problem)
        svc.start()
        svc.submit(log)
        made = svc.run()
        assert len(made) > 50
        full = [d for d in svc.decisions if d.full_solve]
        assert [d.epoch for d in full] == [0]  # warm-up only
        s = svc.summary()
        assert s["full_solves"] == 1
        assert s["cache_hits"] > 0
        assert s["decision_p95_s"] > 0.0
        assert s["benefit_last"] is not None
