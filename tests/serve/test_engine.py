"""Incremental planner: Theorem-3 invariants, rollback, exactness."""

import numpy as np
import pytest

from repro.core.problem import EVAProblem
from repro.sched.theory import const2_satisfied
from repro.serve import IncrementalPlanner, approx_preference


def _problem(n_streams=6, n_servers=4, seed=0):
    rng = np.random.default_rng(seed)
    return EVAProblem(
        n_streams,
        rng.choice([10.0, 15.0, 20.0, 25.0], size=n_servers),
        textures=rng.uniform(0.7, 1.3, size=n_streams),
    )


def _planner(problem):
    return IncrementalPlanner.for_problem(
        problem, preference=approx_preference(problem)
    )


def _schedulable(planner):
    streams, assignment = planner.as_periodic_streams()
    return const2_satisfied(streams, assignment)


class TestSolveAll:
    def test_admits_everyone_on_small_problem(self):
        problem = _problem()
        planner = _planner(problem)
        textures = {i: float(t) for i, t in enumerate(problem.textures)}
        stats = planner.solve_all(textures)
        assert stats["admitted"] == problem.n_streams
        assert stats["rejected"] == []
        assert _schedulable(planner)

    def test_outcome_matches_problem_evaluate(self):
        problem = _problem()
        planner = _planner(problem)
        planner.solve_all({i: float(t) for i, t in enumerate(problem.textures)})
        sids, r, s = planner.decision_arrays()
        assert sids == list(range(problem.n_streams))
        # acc/net/com/eng depend only on the knob configs, so they must
        # agree with the closed forms exactly.  Latency (index 0) also
        # depends on the planner's split/placement, which may differ
        # from the problem's own Algorithm-1 run, so just sanity-check.
        expected = problem.evaluate(r, s)
        got = planner.outcome()
        np.testing.assert_allclose(got[1:], expected[1:], rtol=1e-9)
        assert got[0] > 0.0

    def test_solve_all_is_deterministic(self):
        problem = _problem(seed=3)
        textures = {i: float(t) for i, t in enumerate(problem.textures)}
        a = _planner(problem)
        a.solve_all(textures)
        b = _planner(problem)
        b.solve_all(textures)
        assert a.decision_arrays()[1].tolist() == b.decision_arrays()[1].tolist()
        assert a.decision_arrays()[2].tolist() == b.decision_arrays()[2].tolist()
        assert a.stream_assignment() == b.stream_assignment()


class TestMutations:
    @pytest.fixture
    def planner(self):
        problem = _problem()
        planner = _planner(problem)
        planner.solve_all({i: float(t) for i, t in enumerate(problem.textures)})
        return planner

    def test_add_then_remove_restores_sums(self, planner):
        before = (planner.acc_sum, planner.net_sum, planner.com_sum,
                  planner.eng_sum, planner.ptime_sum, planner.bits_sum)
        config = planner.admit(99, 1.0)
        assert config is not None
        assert 99 in planner.entries
        assert _schedulable(planner)
        assert planner.remove_stream(99)
        after = (planner.acc_sum, planner.net_sum, planner.com_sum,
                 planner.eng_sum, planner.ptime_sum, planner.bits_sum)
        np.testing.assert_allclose(after, before, atol=1e-9)

    def test_remove_unknown_stream_is_noop(self, planner):
        n = len(planner.entries)
        assert not planner.remove_stream(12345)
        assert len(planner.entries) == n

    def test_set_config_rolls_back_on_misfit(self, planner):
        sid = min(planner.entries)
        entry = planner.entries[sid]
        before = (entry.resolution, entry.fps)
        # The top-ranked config on a loaded schedule typically doesn't
        # fit; whether it does or not, the entry must stay consistent.
        ranked = planner.rank_configs(entry.texture)
        ok = planner.set_config(sid, *ranked[0])
        entry = planner.entries[sid]
        if ok:
            assert (entry.resolution, entry.fps) == ranked[0]
        else:
            assert (entry.resolution, entry.fps) == before
        assert _schedulable(planner)

    def test_server_down_repairs_or_evicts(self, planner):
        stats = planner.server_down(0)
        assert not planner.alive[0]
        assert 0 not in [s for subs in planner.stream_assignment().values()
                        for s in subs]
        assert set(stats) >= {"migrated", "degraded", "evicted"}
        assert _schedulable(planner)
        # Evicted streams are really gone from the schedule.
        for sid in stats["evicted"]:
            assert sid not in planner.entries

    def test_server_down_then_up_round_trip(self, planner):
        planner.server_down(1)
        assert planner.server_up(1)
        assert planner.alive[1]
        assert not planner.server_up(1)  # already up
        assert _schedulable(planner)

    def test_bandwidth_factor_shapes_effective_bw(self, planner):
        nominal = planner.effective_bw().copy()
        planner.set_bandwidth_factor(2, 0.5)
        eff = planner.effective_bw()
        assert eff[2] == pytest.approx(nominal[2] * 0.5)
        with pytest.raises(ValueError):
            planner.set_bandwidth_factor(2, 0.0)

    def test_churn_preserves_schedulability(self, planner):
        planner.set_bandwidth_factor(0, 0.4)
        planner.server_down(3)
        planner.admit(50, 1.2)
        planner.remove_stream(min(planner.entries))
        planner.server_up(3)
        assert _schedulable(planner)
