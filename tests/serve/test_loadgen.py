"""Load generator: determinism, validity of the generated churn."""

import pytest

from repro.serve import ChurnProfile, generate_load


def _profile(**kw):
    defaults = dict(
        hours=0.5,
        arrivals_per_hour=200.0,
        departures_per_hour=150.0,
        drifts_per_hour=40.0,
        flaps_per_hour=10.0,
    )
    defaults.update(kw)
    return ChurnProfile(**defaults)


class TestChurnProfile:
    def test_rejects_nonpositive_hours(self):
        with pytest.raises(ValueError, match="hours"):
            ChurnProfile(hours=0.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError, match="arrivals_per_hour"):
            ChurnProfile(arrivals_per_hour=-1.0)

    def test_rejects_bad_bw_range(self):
        with pytest.raises(ValueError, match="bw_factor_range"):
            ChurnProfile(bw_factor_range=(0.0, 1.0))


class TestGenerateLoad:
    def test_same_seed_same_log(self):
        a = generate_load(6, 4, profile=_profile(), seed=7)
        b = generate_load(6, 4, profile=_profile(), seed=7)
        assert a == b

    def test_different_seed_differs(self):
        a = generate_load(6, 4, profile=_profile(), seed=7)
        b = generate_load(6, 4, profile=_profile(), seed=8)
        assert a != b

    def test_topology_recorded(self):
        log = generate_load(6, 4, profile=_profile(), seed=0)
        assert log.n_streams == 6
        assert log.n_servers == 4
        assert log.seed == 0
        assert log.horizon_s == pytest.approx(0.5 * 3600.0)

    def test_event_volume_scales_with_rates(self):
        small = generate_load(6, 4, profile=_profile(arrivals_per_hour=50.0,
                                                     departures_per_hour=50.0),
                              seed=0)
        big = generate_load(6, 4, profile=_profile(arrivals_per_hour=2000.0,
                                                   departures_per_hour=2000.0),
                            seed=0)
        assert len(big) > len(small)

    def test_leaves_only_target_active_streams(self):
        log = generate_load(6, 4, profile=_profile(), seed=3)
        active = set(range(6))
        for e in log:
            if e.kind == "stream_join":
                assert e.target not in active
                active.add(e.target)
            elif e.kind == "stream_leave":
                assert e.target in active
                active.remove(e.target)

    def test_population_floor_respected(self):
        log = generate_load(
            2, 3,
            profile=_profile(arrivals_per_hour=5.0, departures_per_hour=500.0,
                             min_active=1),
            seed=1,
        )
        n_active = 2
        for e in log:
            if e.kind == "stream_join":
                n_active += 1
            elif e.kind == "stream_leave":
                n_active -= 1
            assert n_active >= 1

    def test_at_most_one_server_down(self):
        log = generate_load(6, 4, profile=_profile(flaps_per_hour=60.0), seed=5)
        down = set()
        for e in log:
            if e.kind == "server_down":
                down.add(e.target)
                assert len(down) <= 1
            elif e.kind == "server_up":
                assert e.target in down
                down.remove(e.target)
        assert not down  # every outage ends within the log

    def test_server_targets_in_range(self):
        log = generate_load(6, 4, profile=_profile(), seed=2)
        for e in log:
            if e.kind in ("bandwidth_drift", "server_down", "server_up"):
                assert 0 <= e.target < 4

    def test_single_server_never_flaps(self):
        log = generate_load(4, 1, profile=_profile(flaps_per_hour=100.0), seed=0)
        assert all(e.kind not in ("server_down", "server_up") for e in log)
