"""Property tests: the incremental GP update equals the from-scratch fit.

``GPRegressor.update`` extends the Cholesky factor by a block
(O(n²m)) instead of refitting (O(n³)).  These tests pin the
equivalence across random shapes, kernels, hyperparameters, and
y-normalization settings: the fast posterior must match both the
``fast=False`` escape hatch and a fresh fit on the concatenated data
to tight tolerance.  The shared factor cache is disabled throughout so
the reference paths stay genuinely independent computations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import GPRegressor, Matern32Kernel, Matern52Kernel, RBFKernel
from repro.gp import cache as gp_cache

KERNELS = (RBFKernel, Matern32Kernel, Matern52Kernel)

#: fast and slow posteriors must agree to this tolerance (acceptance bound)
ATOL = 1e-8


@pytest.fixture(autouse=True)
def _no_chol_cache():
    """Keep reference fits independent of fast-path cache entries."""
    gp_cache.configure(enabled=False)
    yield
    gp_cache.configure(enabled=True)


@st.composite
def gp_update_case(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    d = draw(st.integers(1, 3))
    n0 = draw(st.integers(4, 25))
    m = draw(st.integers(1, 6))
    cls = draw(st.sampled_from(KERNELS))
    ell = draw(st.floats(0.1, 2.0))
    noise = draw(st.floats(1e-6, 1e-2))
    normalize_y = draw(st.booleans())
    gen = np.random.default_rng(seed)
    x = gen.uniform(-1.0, 1.0, size=(n0 + m, d))
    y = np.sin(2.0 * x.sum(axis=1)) + 0.1 * gen.standard_normal(n0 + m)
    kernel = cls(np.full(d, ell))
    return kernel, noise, normalize_y, x, y, n0


def _posterior(gp: GPRegressor, probe: np.ndarray):
    mean, var = gp.predict(probe)
    return mean, var


class TestIncrementalUpdateEquivalence:
    @given(gp_update_case())
    @settings(max_examples=40, deadline=None)
    def test_update_matches_from_scratch_fit(self, case):
        kernel, noise, normalize_y, x, y, n0 = case
        probe = np.linspace(-1.0, 1.0, 7)[:, None] * np.ones(x.shape[1])[None, :]

        import copy

        base = GPRegressor(copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y)
        base.fit(x[:n0], y[:n0], optimize=False)
        base.update(x[n0:], y[n0:], fast=True)

        ref = GPRegressor(copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y)
        ref.fit(x, y, optimize=False)

        m_fast, v_fast = _posterior(base, probe)
        m_ref, v_ref = _posterior(ref, probe)
        np.testing.assert_allclose(m_fast, m_ref, rtol=0, atol=ATOL)
        np.testing.assert_allclose(v_fast, v_ref, rtol=0, atol=ATOL)

    @given(gp_update_case())
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_slow_escape_hatch(self, case):
        kernel, noise, normalize_y, x, y, n0 = case
        probe = np.linspace(-1.0, 1.0, 5)[:, None] * np.ones(x.shape[1])[None, :]

        import copy

        fast = GPRegressor(copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y)
        fast.fit(x[:n0], y[:n0], optimize=False)
        fast.update(x[n0:], y[n0:], fast=True)

        slow = GPRegressor(copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y)
        slow.fit(x[:n0], y[:n0], optimize=False)
        slow.update(x[n0:], y[n0:], fast=False)

        m_fast, v_fast = _posterior(fast, probe)
        m_slow, v_slow = _posterior(slow, probe)
        np.testing.assert_allclose(m_fast, m_slow, rtol=0, atol=ATOL)
        np.testing.assert_allclose(v_fast, v_slow, rtol=0, atol=ATOL)

    @given(gp_update_case())
    @settings(max_examples=20, deadline=None)
    def test_repeated_updates_stay_consistent(self, case):
        # appending one block at a time == appending everything at once
        kernel, noise, normalize_y, x, y, n0 = case
        probe = np.zeros((1, x.shape[1]))

        import copy

        stepwise = GPRegressor(
            copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y
        )
        stepwise.fit(x[:n0], y[:n0], optimize=False)
        for k in range(n0, x.shape[0]):
            stepwise.update(x[k : k + 1], y[k : k + 1], fast=True)

        bulk = GPRegressor(copy.deepcopy(kernel), noise=noise, normalize_y=normalize_y)
        bulk.fit(x, y, optimize=False)

        m_step, v_step = _posterior(stepwise, probe)
        m_bulk, v_bulk = _posterior(bulk, probe)
        np.testing.assert_allclose(m_step, m_bulk, rtol=0, atol=ATOL)
        np.testing.assert_allclose(v_step, v_bulk, rtol=0, atol=ATOL)
