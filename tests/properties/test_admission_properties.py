"""Property tests: overload hardening never breaks the theory.

Random churn (joins at random priorities, leaves, overload pressure) is
pushed through the :class:`~repro.serve.admission.AdmissionController`
against a live :class:`~repro.serve.engine.IncrementalPlanner`, and
after every single operation the planner's flattened schedule must
still satisfy the paper's Const1/Const2 feasibility predicates — the
controller may shed, evict, or reject, but it must never leave an
infeasible schedule behind.  A second invariant pins the priority
contract (evictions are strictly-lower-class only, lowest class
first), and a third replays randomly generated event logs through the
WAL to prove recovery is bit-identical to the uninterrupted run.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import EVAProblem
from repro.sched import const1_satisfied, const2_satisfied
from repro.serve import (
    AdmissionController,
    IncrementalPlanner,
    ServeEvent,
    WriteAheadLog,
    approx_preference,
    build_service,
    recover_service,
    service_spec,
)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _planner(seed: int, n_streams: int = 3, n_servers: int = 2):
    rng = np.random.default_rng(seed)
    problem = EVAProblem(
        n_streams,
        rng.choice([8.0, 12.0, 16.0], size=n_servers),
        textures=rng.uniform(0.7, 1.3, size=n_streams),
    )
    planner = IncrementalPlanner.for_problem(
        problem, preference=approx_preference(problem)
    )
    planner.solve_all({i: float(problem.textures[i]) for i in range(n_streams)})
    return planner


def _feasible(planner) -> bool:
    streams, assignment = planner.as_periodic_streams()
    if not streams:
        return True
    return const1_satisfied(streams, assignment) and const2_satisfied(
        streams, assignment
    )


@st.composite
def churn_ops(draw):
    """A random op sequence: (kind, priority, texture) per step."""
    n = draw(st.integers(5, 30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["join", "join", "join", "leave"]))
        prio = draw(st.integers(0, 3))
        texture = draw(st.floats(0.5, 1.5))
        ops.append((kind, prio, texture))
    return ops


class TestFeasibilityUnderChurn:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**16), ops=churn_ops())
    def test_const1_const2_hold_after_every_op(self, seed, ops):
        planner = _planner(seed)
        pmap = {}
        ctrl = AdmissionController(
            priority_map=pmap, join_rate_per_epoch=4.0, max_queue_depth=8
        )
        assert _feasible(planner)
        next_sid = 100
        rng = np.random.default_rng(seed)
        for epoch, (kind, prio, texture) in enumerate(ops):
            if kind == "leave" and planner.entries:
                sids = sorted(planner.entries)
                planner.remove_stream(sids[int(rng.integers(len(sids)))])
            elif kind == "join":
                sid = next_sid
                next_sid += 1
                pmap[sid] = prio  # ctrl holds the same dict
                ctrl.request_join(
                    planner,
                    sid,
                    texture,
                    epoch=epoch,
                    queue_depth=int(rng.integers(0, 12)),
                    min_config=bool(rng.integers(0, 2)),
                )
            assert _feasible(planner), f"infeasible after op {epoch} {kind}"

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**16), ops=churn_ops())
    def test_evictions_are_strictly_lower_class(self, seed, ops):
        planner = _planner(seed)
        pmap = {i: 0 for i in planner.entries}
        ctrl = AdmissionController(priority_map=pmap)
        next_sid = 100
        for epoch, (kind, prio, texture) in enumerate(ops):
            if kind != "join":
                continue
            sid = next_sid
            next_sid += 1
            pmap[sid] = prio
            resident_prio = {v: pmap.get(v, 0) for v in planner.entries}
            out = ctrl.request_join(planner, sid, texture, epoch=epoch)
            for victim in out.evicted:
                assert resident_prio[victim] < prio, (
                    f"evicted class {resident_prio[victim]} for class {prio}"
                )
            classes = [resident_prio[v] for v in out.evicted]
            assert classes == sorted(classes)
            if out.action == "rejected":
                # Rejection must leave the resident set untouched.
                assert set(planner.entries) == set(resident_prio)


@st.composite
def event_logs(draw):
    """A random serve event log over a ~10-epoch horizon."""
    n = draw(st.integers(3, 12))
    events = []
    for i in range(n):
        t = draw(st.floats(0.1, 9.9))
        kind = draw(
            st.sampled_from(
                ["stream_join", "stream_join", "stream_leave", "bandwidth_drift"]
            )
        )
        if kind == "stream_join":
            events.append(
                ServeEvent(
                    time=t, kind=kind, target=100 + i,
                    value=draw(st.floats(0.6, 1.4)),
                )
            )
        elif kind == "stream_leave":
            events.append(ServeEvent(time=t, kind=kind, target=draw(st.integers(0, 4))))
        else:
            events.append(
                ServeEvent(
                    time=t, kind=kind, target=draw(st.integers(0, 1)),
                    value=draw(st.floats(0.3, 1.0)),
                )
            )
    return events


class TestRecoveryBitIdentity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**10), events=event_logs())
    def test_replay_matches_uninterrupted_run(self, seed, events, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("walprop")
        wal_path = tmp / f"s{seed}.wal"
        spec = service_spec(
            n_streams=4, bandwidths_mbps=[10.0, 14.0], seed=seed % 97
        )
        golden = build_service(spec)
        with WriteAheadLog.create(wal_path, spec) as wal:
            golden.attach_wal(wal)
            golden.submit(events)
            golden.start()
            golden.run()
        recovered, info = recover_service(wal_path)
        recovered.run()
        assert info.verify(recovered) == []
        assert [
            (d.epoch, d.sig_hash()) for d in recovered.decisions
        ] == [(d.epoch, d.sig_hash()) for d in golden.decisions]
