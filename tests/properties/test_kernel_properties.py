"""Property tests: every kernel produces symmetric PSD Gram matrices.

The incremental-Cholesky fast path and the shared factor cache both
lean on these algebraic facts — a kernel that broke symmetry or
positive-semidefiniteness would invalidate every factorization in the
hot path, so they are pinned here across random inputs, shapes, and
hyperparameters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    Matern32Kernel,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
)

KERNELS = (RBFKernel, Matern32Kernel, Matern52Kernel)


@st.composite
def kernel_and_inputs(draw):
    """A randomly-parameterized kernel plus a random input matrix."""
    cls = draw(st.sampled_from(KERNELS))
    d = draw(st.integers(1, 3))
    n = draw(st.integers(2, 12))
    ell = np.array([draw(st.floats(0.05, 3.0)) for _ in range(d)])
    scale = draw(st.floats(0.1, 5.0))
    seed = draw(st.integers(0, 2**32 - 1))
    x = np.random.default_rng(seed).uniform(-2.0, 2.0, size=(n, d))
    return cls(ell, scale), x


@st.composite
def composite_kernel_and_inputs(draw):
    """Sum/product composition of two base kernels plus inputs."""
    comp = draw(st.sampled_from((SumKernel, ProductKernel)))
    k1, x = draw(kernel_and_inputs())
    d = x.shape[1]
    cls2 = draw(st.sampled_from(KERNELS))
    ell2 = np.array([draw(st.floats(0.05, 3.0)) for _ in range(d)])
    return comp(k1, cls2(ell2, draw(st.floats(0.1, 5.0)))), x


class TestKernelMatrixProperties:
    @given(kernel_and_inputs())
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, kx):
        kernel, x = kx
        k = kernel(x)
        np.testing.assert_allclose(k, k.T, rtol=0, atol=1e-12)

    @given(kernel_and_inputs())
    @settings(max_examples=60, deadline=None)
    def test_positive_semidefinite(self, kx):
        kernel, x = kx
        eigvals = np.linalg.eigvalsh(kernel(x))
        assert eigvals.min() >= -1e-8 * max(1.0, eigvals.max())

    @given(kernel_and_inputs())
    @settings(max_examples=40, deadline=None)
    def test_diag_matches_full_matrix(self, kx):
        kernel, x = kx
        np.testing.assert_allclose(
            kernel.diag(x), np.diag(kernel(x)), rtol=0, atol=1e-12
        )

    @given(kernel_and_inputs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_cross_matrix_transpose_consistent(self, kx, seed):
        kernel, x1 = kx
        x2 = np.random.default_rng(seed).uniform(-2.0, 2.0, size=(5, x1.shape[1]))
        np.testing.assert_allclose(
            kernel(x1, x2), kernel(x2, x1).T, rtol=0, atol=1e-12
        )

    @given(kernel_and_inputs())
    @settings(max_examples=30, deadline=None)
    def test_jittered_matrix_is_choleskyable(self, kx):
        # the exact operation the GP hot path performs on every fit
        kernel, x = kx
        k = kernel(x) + 1e-6 * np.eye(x.shape[0])
        ell = np.linalg.cholesky(k)
        np.testing.assert_allclose(ell @ ell.T, k, rtol=0, atol=1e-10)


class TestCompositeKernelProperties:
    @given(composite_kernel_and_inputs())
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_psd(self, kx):
        kernel, x = kx
        k = kernel(x)
        np.testing.assert_allclose(k, k.T, rtol=0, atol=1e-12)
        eigvals = np.linalg.eigvalsh(k)
        assert eigvals.min() >= -1e-8 * max(1.0, eigvals.max())
