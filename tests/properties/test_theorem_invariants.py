"""Property tests: Theorems 1–3 hold on randomly generated problems.

Random harmonic stream sets are pushed through Algorithm 1's grouping
and the analytic §3 predicates: every Theorem-3-satisfying group must
satisfy the Theorem-1 (zero-jitter) premise, every Const2-satisfying
assignment must satisfy Const1 (Theorem 2), and the grouping the
scheduler actually emits must be feasible end to end.  A small
simulator cross-check confirms the zero-jitter claim on real queueing
dynamics, not just the inequalities.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.sched import (
    PeriodicStream,
    const1_satisfied,
    const2_satisfied,
    group_streams,
    stagger_offsets,
    theorem1_zero_jitter,
    theorem3_conditions,
    utilization,
)
from repro.sim import EdgeCluster, StreamSpec


def _stream(sid: int, fps: float, p: float) -> PeriodicStream:
    return PeriodicStream(
        stream_id=sid,
        fps=fps,
        resolution=960.0,
        processing_time=p,
        bits_per_frame=1.0,
    )


@st.composite
def harmonic_streams(draw):
    """Random stream set with power-of-two harmonic frame periods."""
    base_fps = draw(st.sampled_from([2.0, 5.0, 10.0, 20.0]))
    n = draw(st.integers(2, 8))
    streams = []
    for i in range(n):
        fps = base_fps / draw(st.sampled_from([1, 2, 4, 8]))
        frac = draw(st.floats(0.02, 0.6))
        streams.append(_stream(i, fps, frac / fps))
    return streams


@st.composite
def scaled_harmonic_streams(draw, max_total_load=1.4):
    """Harmonic streams with Σp scaled to a drawn fraction of T_min.

    Generating the total load directly (instead of independent
    per-stream loads) keeps the Σp ≤ T_min premise satisfiable often
    enough that ``assume``-based theorem tests don't degenerate into
    rejection sampling, while ``max_total_load > 1`` still yields
    genuine negative draws.
    """
    base_fps = draw(st.sampled_from([2.0, 5.0, 10.0, 20.0]))
    n = draw(st.integers(2, 8))
    divisors = [draw(st.sampled_from([1, 2, 4, 8])) for _ in range(n)]
    weights = [draw(st.floats(0.05, 1.0)) for _ in range(n)]
    total_load = draw(st.floats(0.1, max_total_load))
    t_min = min(divisors) / base_fps
    scale = total_load * t_min / sum(weights)
    return [
        _stream(i, base_fps / d, w * scale)
        for i, (d, w) in enumerate(zip(divisors, weights))
    ]


@st.composite
def random_assignment_case(draw):
    """Streams (arbitrary rates) plus a random server assignment."""
    streams = draw(scaled_harmonic_streams())
    n_servers = draw(st.integers(1, 4))
    assignment = [
        draw(st.integers(0, n_servers - 1)) for _ in range(len(streams))
    ]
    return streams, assignment


class TestTheorem2:
    """Const2 ⇒ Const1 for ANY assignment, not just Algorithm 1's."""

    @given(random_assignment_case())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_const2_implies_const1(self, case):
        streams, assignment = case
        assume(const2_satisfied(streams, assignment))
        assert const1_satisfied(streams, assignment)


class TestTheorem3:
    """Harmonic periods + Σp ≤ T_min ⇒ the Theorem-1 premise (Const2)."""

    @given(scaled_harmonic_streams())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_theorem3_implies_zero_jitter_premise(self, streams):
        assume(theorem3_conditions(streams))
        assert theorem1_zero_jitter(streams)
        assert const2_satisfied(streams, [0] * len(streams))


class TestGroupScheduleFeasibility:
    """Algorithm 1's output is feasible whenever it claims success."""

    @given(harmonic_streams(), st.integers(1, 4))
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_strict_grouping_is_feasible(self, streams, n_servers):
        try:
            grouping = group_streams(streams, n_servers, strict=True)
        except Exception:
            assume(False)  # infeasible draw — nothing to check
        assert grouping.validate()
        # every stream appears exactly once
        placed = sorted(s.stream_id for grp in grouping.groups for s in grp)
        assert placed == sorted(s.stream_id for s in streams)
        # every emitted group satisfies the zero-jitter premise …
        for grp in grouping.groups:
            assert theorem1_zero_jitter(grp)
        # … so the implied assignment satisfies Const2, hence Const1
        assignment = [grouping.group_of[s.stream_id] for s in streams]
        assert const2_satisfied(streams, assignment)
        assert const1_satisfied(streams, assignment)
        assert all(u <= 1.0 + 1e-9 for u in utilization(streams, assignment).values())

    @given(harmonic_streams(), st.integers(1, 4))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_stagger_offsets_fit_inside_gcd_budget(self, streams, n_servers):
        try:
            grouping = group_streams(streams, n_servers, strict=True)
        except Exception:
            assume(False)
        for grp in grouping.groups:
            if not grp:
                continue
            offsets = stagger_offsets(grp)
            assert all(b >= a for a, b in zip(offsets, offsets[1:]))
            # last stream still finishes inside the group's gcd window
            total_p = offsets[-1] + grp[-1].processing_time
            assert total_p <= min(s.period for s in grp) + 1e-9


class TestZeroJitterInSimulator:
    """Theorem 1 measured: Const2 groups show zero queueing delay."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zero_jitter_under_const2(self, seed):
        gen = np.random.default_rng(seed)
        base_fps = float(gen.choice([5.0, 10.0]))
        n = int(gen.integers(2, 5))
        fps = base_fps / gen.choice([1, 2, 4], size=n)
        fracs = gen.uniform(0.05, 0.5, size=n)
        fracs *= 0.9 / fracs.sum()  # Σp = 0.9 · gcd ≤ gcd
        group = [
            _stream(i, f, frac / base_fps) for i, (f, frac) in enumerate(zip(fps, fracs))
        ]
        assert theorem1_zero_jitter(group)
        offsets = stagger_offsets(group)
        specs = [
            StreamSpec(
                stream_id=s.stream_id,
                fps=s.fps,
                processing_time=s.processing_time,
                bits_per_frame=1e-6,
                offset=o,
            )
            for s, o in zip(group, offsets)
        ]
        report = EdgeCluster([1e6]).run(specs, [0] * n, 6.0)
        assert report.max_jitter == pytest.approx(0.0, abs=1e-9)
