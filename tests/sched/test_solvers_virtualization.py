"""Tests for exact/annealed schedulers and server virtualization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    AnnealedScheduler,
    InfeasibleScheduleError,
    PeriodicStream,
    PhysicalServer,
    const2_satisfied,
    exact_grouping,
    group_streams,
    virtualize,
)
from repro.video.profiles import DeviceProfile


def _stream(sid, fps, p, bits=1e5):
    return PeriodicStream(
        stream_id=sid, fps=fps, resolution=960.0,
        processing_time=p, bits_per_frame=bits,
    )


class TestExactGrouping:
    def test_finds_feasible_grouping(self):
        streams = [_stream(0, 10, 0.03), _stream(1, 5, 0.03), _stream(2, 2.5, 0.02)]
        res = exact_grouping(streams, 2)
        assert res.validate()
        assignment = [res.group_of[s.stream_id] for s in streams]
        assert const2_satisfied(streams, assignment)

    def test_infeasible_raises(self):
        streams = [_stream(i, 10, 0.09) for i in range(3)]
        with pytest.raises(InfeasibleScheduleError):
            exact_grouping(streams, 2)

    def test_pads_empty_groups(self):
        res = exact_grouping([_stream(0, 10, 0.01)], 3)
        assert len(res.groups) == 3

    def test_minimizes_comm_cost_with_bandwidths(self):
        heavy = _stream(0, 30, 0.01, bits=1e6)
        light = _stream(1, 1, 0.01, bits=1e3)
        res = exact_grouping([heavy, light], 2, bandwidths_mbps=[5.0, 50.0])
        # heavy and light must not share (different non-harmonic? 30 and 1 are
        # harmonic actually; capacity 0.02 <= 1/30? no: sum p = 0.02 < T_min=1/30=0.033 OK
        # they *can* share; check solver returns a valid grouping regardless
        assert res.validate()

    def test_budget_exceeded_raises(self):
        streams = [_stream(i, 10, 0.001) for i in range(12)]
        with pytest.raises(RuntimeError):
            exact_grouping(streams, 6, max_nodes=10)

    @given(
        st.lists(
            st.tuples(st.sampled_from([1, 2, 5, 10]), st.floats(0.005, 0.04)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_finds_solution_whenever_algorithm1_does(self, raw):
        """Algorithm 1 is a heuristic: whenever it succeeds, the exact
        solver must also succeed (its search space is a superset)."""
        streams = [_stream(i, fps, p) for i, (fps, p) in enumerate(raw)]
        try:
            group_streams(streams, 3)
        except InfeasibleScheduleError:
            return
        res = exact_grouping(streams, 3)
        assert res.validate()

    def test_exact_beats_heuristic_sometimes(self):
        """The exact solver can pack streams Algorithm 1's greedy order
        cannot (value of the B&B ablation)."""
        # crafted instance: greedy priority order wastes the small slot
        streams = [
            _stream(0, 10, 0.06),
            _stream(1, 10, 0.06),
            _stream(2, 5, 0.13),
            _stream(3, 5, 0.06),
        ]
        exact_ok = True
        try:
            exact_grouping(streams, 2)
        except InfeasibleScheduleError:
            exact_ok = False
        # whatever the heuristic does, the exact result is authoritative
        if exact_ok:
            res = exact_grouping(streams, 2)
            assert res.validate()


class TestAnnealedScheduler:
    def test_finds_feasible_assignment(self):
        streams = [
            _stream(0, 10, 0.03),
            _stream(1, 5, 0.03),
            _stream(2, 2.5, 0.02),
            _stream(3, 10, 0.02),
        ]
        res = AnnealedScheduler(rng=0).solve(streams, [10.0, 20.0, 30.0])
        assert res.feasible
        assert const2_satisfied(streams, res.assignment)

    def test_respects_bandwidth_preference(self):
        heavy = _stream(0, 30, 0.005, bits=2e6)
        light = _stream(1, 1, 0.005, bits=1e3)
        res = AnnealedScheduler(rng=1, n_iters=2000).solve(
            [heavy, light], [5.0, 50.0]
        )
        # heavy stream should land on the 50 Mbps link
        assert res.assignment[0] == 1

    def test_deterministic_by_seed(self):
        streams = [_stream(i, 10, 0.02) for i in range(4)]
        a = AnnealedScheduler(rng=7, n_iters=500).solve(streams, [10.0, 20.0])
        b = AnnealedScheduler(rng=7, n_iters=500).solve(streams, [10.0, 20.0])
        assert a.assignment == b.assignment

    def test_invalid_cooling(self):
        with pytest.raises(ValueError):
            AnnealedScheduler(cooling=1.5)

    def test_infeasible_instance_flagged(self):
        streams = [_stream(i, 10, 0.09) for i in range(4)]
        res = AnnealedScheduler(rng=0, n_iters=800).solve(streams, [10.0])
        assert not res.feasible


class TestVirtualization:
    def test_slot_counts_by_capacity(self):
        base = DeviceProfile(effective_tflops=6.0)
        servers = [
            PhysicalServer("big", tflops=18.0, bandwidth_mbps=30.0),
            PhysicalServer("small", tflops=6.0, bandwidth_mbps=10.0),
        ]
        vc = virtualize(servers, base_profile=base)
        assert len(vc.slots_of("big")) == 3
        assert len(vc.slots_of("small")) == 1
        assert vc.n_slots == 4

    def test_bandwidth_split_evenly(self):
        base = DeviceProfile(effective_tflops=6.0)
        vc = virtualize(
            [PhysicalServer("big", tflops=12.0, bandwidth_mbps=20.0)],
            base_profile=base,
        )
        np.testing.assert_allclose(vc.bandwidths_mbps, [10.0, 10.0])

    def test_undersized_server_gets_one_slot(self):
        base = DeviceProfile(effective_tflops=6.0)
        vc = virtualize(
            [PhysicalServer("tiny", tflops=4.0, bandwidth_mbps=10.0)],
            base_profile=base,
        )
        assert vc.n_slots == 1

    def test_too_small_server_skipped(self):
        base = DeviceProfile(effective_tflops=6.0)
        servers = [
            PhysicalServer("dust", tflops=1.0, bandwidth_mbps=10.0),
            PhysicalServer("ok", tflops=6.0, bandwidth_mbps=10.0),
        ]
        vc = virtualize(servers, base_profile=base)
        assert vc.slots_of("dust") == []
        assert vc.n_slots == 1

    def test_all_too_small_raises(self):
        base = DeviceProfile(effective_tflops=6.0)
        with pytest.raises(ValueError):
            virtualize(
                [PhysicalServer("dust", tflops=0.5, bandwidth_mbps=10.0)],
                base_profile=base,
            )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            virtualize([])

    def test_mapping_roundtrip(self):
        base = DeviceProfile(effective_tflops=6.0)
        vc = virtualize(
            [
                PhysicalServer("a", tflops=12.0, bandwidth_mbps=20.0),
                PhysicalServer("b", tflops=6.0, bandwidth_mbps=30.0),
            ],
            base_profile=base,
        )
        for slot in vc.slots:
            assert slot.slot_id in vc.slots_of(slot.physical)
            assert vc.physical_of(slot.slot_id) == slot.physical

    def test_virtual_cluster_drives_eva_problem(self):
        """End to end: heterogeneous hardware → EVAProblem via slots."""
        from repro.core import EVAProblem

        base = DeviceProfile(effective_tflops=6.0)
        vc = virtualize(
            [
                PhysicalServer("jetson-agx", tflops=12.0, bandwidth_mbps=30.0),
                PhysicalServer("jetson-nx", tflops=6.0, bandwidth_mbps=15.0),
            ],
            base_profile=base,
        )
        problem = EVAProblem(
            n_streams=3, bandwidths_mbps=vc.bandwidths_mbps, profile=vc.profile
        )
        y = problem.evaluate(*problem.sample_decision(rng=0))
        assert np.all(np.isfinite(y))
