"""Tests for Const1/Const2 and Theorems 1–3, incl. simulator cross-checks.

The crown property: any grouping satisfying Theorem 1's premise, run
through the discrete-event simulator with staggered offsets, measures
exactly zero queueing delay.  And Theorem 2: every Const2-satisfying
assignment also satisfies Const1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    PeriodicStream,
    const1_satisfied,
    const2_satisfied,
    stagger_offsets,
    theorem1_zero_jitter,
    theorem3_conditions,
    utilization,
)
from repro.sim import EdgeCluster, StreamSpec


def _stream(sid, fps, p):
    return PeriodicStream(
        stream_id=sid, fps=fps, resolution=960.0, processing_time=p, bits_per_frame=1.0
    )


# Strategy: harmonic groups built from a base fps and integer multipliers,
# with processing times scaled to respect (or violate) the budget.
@st.composite
def harmonic_group(draw, satisfy=True):
    base_fps = draw(st.sampled_from([1, 2, 5, 10, 25]))
    t_min = 1.0 / base_fps
    n = draw(st.integers(1, 4))
    mults = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    fractions = draw(
        st.lists(st.floats(0.05, 0.95), min_size=n, max_size=n)
    )
    total = sum(fractions)
    budget = t_min * (0.9 if satisfy else 1.5)
    ps = [budget * f / total for f in fractions]
    return [
        _stream(i, base_fps / m, p) for i, (m, p) in enumerate(zip(mults, ps))
    ]


class TestConstraints:
    def test_const1_simple(self):
        streams = [_stream(0, 10, 0.05), _stream(1, 10, 0.04)]
        assert const1_satisfied(streams, [0, 0])

    def test_const1_violated(self):
        streams = [_stream(0, 10, 0.08), _stream(1, 10, 0.08)]
        assert not const1_satisfied(streams, [0, 0])

    def test_const1_separate_servers_ok(self):
        streams = [_stream(0, 10, 0.08), _stream(1, 10, 0.08)]
        assert const1_satisfied(streams, [0, 1])

    def test_const2_harmonic_within_budget(self):
        # T = 0.1 and 0.2, gcd = 0.1, sum p = 0.08
        streams = [_stream(0, 10, 0.05), _stream(1, 5, 0.03)]
        assert const2_satisfied(streams, [0, 0])

    def test_const2_violated_by_nonharmonic(self):
        # T = 0.3, 0.4 -> gcd 0.1 < p sum 0.15
        streams = [_stream(0, 1 / 0.3, 0.08), _stream(1, 2.5, 0.07)]
        assert not const2_satisfied(streams, [0, 0])

    def test_dropped_streams_ignored(self):
        streams = [_stream(0, 10, 0.5), _stream(1, 10, 0.05)]
        assert const1_satisfied(streams, [-1, 0])

    def test_utilization_per_server(self):
        streams = [_stream(0, 10, 0.05), _stream(1, 5, 0.1)]
        u = utilization(streams, [0, 1])
        assert u[0] == pytest.approx(0.5)
        assert u[1] == pytest.approx(0.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            const1_satisfied([_stream(0, 10, 0.05)], [0, 1])


class TestTheorem2:
    """Const2 ⇒ Const1."""

    @given(harmonic_group(satisfy=True))
    @settings(max_examples=50, deadline=None)
    def test_const2_implies_const1(self, group):
        assignment = [0] * len(group)
        if const2_satisfied(group, assignment):
            assert const1_satisfied(group, assignment)


class TestTheorem3:
    def test_conditions_imply_const2(self):
        group = [_stream(0, 10, 0.04), _stream(1, 5, 0.05)]
        assert theorem3_conditions(group)
        assert const2_satisfied(group, [0, 0])

    def test_nonharmonic_fails(self):
        group = [_stream(0, 1 / 0.3, 0.01), _stream(1, 2.5, 0.01)]
        assert not theorem3_conditions(group)

    def test_over_budget_fails(self):
        group = [_stream(0, 10, 0.06), _stream(1, 5, 0.06)]
        assert not theorem3_conditions(group)

    def test_empty_group(self):
        assert theorem3_conditions([])

    @given(harmonic_group(satisfy=True))
    @settings(max_examples=50, deadline=None)
    def test_theorem3_implies_const2(self, group):
        if theorem3_conditions(group):
            assert const2_satisfied(group, [0] * len(group))


class TestTheorem1ZeroJitterInSimulator:
    """The simulator validates the zero-jitter proof end to end."""

    def _run_group(self, group, horizon=10.0):
        offsets = stagger_offsets(group)
        specs = [
            StreamSpec(
                stream_id=s.stream_id,
                fps=s.fps,
                processing_time=s.processing_time,
                bits_per_frame=1e-6,  # negligible uplink time
                offset=o,
            )
            for s, o in zip(group, offsets)
        ]
        cluster = EdgeCluster([1e6])
        return cluster.run(specs, [0] * len(specs), horizon)

    def test_example_zero_jitter(self):
        group = [_stream(0, 5, 0.05), _stream(1, 2.5, 0.05)]
        assert theorem1_zero_jitter(group)
        rep = self._run_group(group)
        assert rep.max_jitter == pytest.approx(0.0, abs=1e-9)

    @given(harmonic_group(satisfy=True))
    @settings(max_examples=25, deadline=None)
    def test_property_const2_gives_zero_jitter(self, group):
        if not theorem1_zero_jitter(group):
            return  # premise not met for this draw
        rep = self._run_group(group, horizon=5.0)
        assert rep.max_jitter <= 1e-9

    def test_violating_group_shows_jitter(self):
        # Deliberately violate Const2: same period, combined p > T.
        group = [_stream(0, 5, 0.12), _stream(1, 5, 0.12)]
        assert not theorem1_zero_jitter(group)
        # Without stagger they collide at t=0.
        specs = [
            StreamSpec(s.stream_id, s.fps, s.processing_time, 1e-6)
            for s in group
        ]
        rep = EdgeCluster([1e6]).run(specs, [0, 0], 5.0)
        assert rep.max_jitter > 0.0

    def test_stagger_offsets_cumulative(self):
        group = [_stream(0, 5, 0.05), _stream(1, 5, 0.03), _stream(2, 5, 0.02)]
        assert stagger_offsets(group) == [0.0, 0.05, pytest.approx(0.08)]
