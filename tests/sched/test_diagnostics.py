"""Tests for infeasibility diagnosis."""

import pytest

from repro.sched import PeriodicStream, diagnose_infeasibility


def _stream(sid, fps, p):
    return PeriodicStream(
        stream_id=sid, fps=fps, resolution=960.0,
        processing_time=p, bits_per_frame=1.0,
    )


class TestDiagnoseInfeasibility:
    def test_clean_instance_no_reasons(self):
        streams = [_stream(0, 10, 0.02), _stream(1, 5, 0.02)]
        assert diagnose_infeasibility(streams, 2) == []

    def test_high_rate_stream_flagged(self):
        streams = [_stream(0, 10, 0.25)]
        reasons = diagnose_infeasibility(streams, 2)
        assert any("split" in r for r in reasons)

    def test_overload_flagged(self):
        streams = [_stream(i, 10, 0.09) for i in range(24)]  # load 21.6
        reasons = diagnose_infeasibility(streams, 2)
        assert any("utilization" in r for r in reasons)

    def test_non_harmonic_classes_flagged(self):
        # periods 1/7, 1/11, 1/13 are pairwise non-harmonic -> 3 classes
        streams = [_stream(0, 7, 0.01), _stream(1, 11, 0.01), _stream(2, 13, 0.01)]
        reasons = diagnose_infeasibility(streams, 2)
        assert any("non-harmonic" in r for r in reasons)

    def test_harmonic_ladder_no_class_flag(self):
        streams = [_stream(0, 30, 0.001), _stream(1, 15, 0.001), _stream(2, 5, 0.001)]
        reasons = diagnose_infeasibility(streams, 1)
        assert not any("non-harmonic" in r for r in reasons)

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            diagnose_infeasibility([], 0)

    def test_empty_streams_clean(self):
        assert diagnose_infeasibility([], 3) == []

    def test_multiple_reasons_accumulate(self):
        streams = [
            _stream(0, 10, 0.25),  # high-rate
            _stream(1, 7, 0.2),
            _stream(2, 11, 0.2),
            _stream(3, 13, 0.2),
        ]
        reasons = diagnose_infeasibility(streams, 2)
        assert len(reasons) >= 2
