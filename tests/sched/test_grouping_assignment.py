"""Tests for Algorithm 1: grouping and Hungarian assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    GroupingResult,
    InfeasibleScheduleError,
    PeriodicStream,
    assign_groups_to_servers,
    communication_latency,
    const1_satisfied,
    const2_satisfied,
    divisor_priorities,
    group_streams,
    resolve_assignment,
)


def _stream(sid, fps, p, bits=1e5):
    return PeriodicStream(
        stream_id=sid, fps=fps, resolution=960.0,
        processing_time=p, bits_per_frame=bits,
    )


class TestDivisorPriorities:
    def test_counts_dividing_periods(self):
        # periods 0.1, 0.2, 0.3 (sorted): 0.2 divisible by 0.1 (1),
        # 0.3 divisible by 0.1 (1, not by 0.2)
        streams = [_stream(0, 10, 0.01), _stream(1, 5, 0.01), _stream(2, 1 / 0.3, 0.01)]
        assert divisor_priorities(streams) == [0, 1, 1]

    def test_all_equal_periods(self):
        streams = [_stream(i, 10, 0.01) for i in range(3)]
        assert divisor_priorities(streams) == [0, 1, 2]

    def test_empty(self):
        assert divisor_priorities([]) == []


class TestGroupStreams:
    def test_single_stream(self):
        res = group_streams([_stream(0, 10, 0.05)], 2)
        assert res.n_nonempty == 1
        assert res.validate()

    def test_harmonic_streams_share_group(self):
        streams = [_stream(0, 10, 0.03), _stream(1, 5, 0.03)]
        res = group_streams(streams, 2)
        assert res.n_nonempty == 1

    def test_nonharmonic_streams_separated(self):
        # periods 0.3 and 0.4 can't share a group (not harmonic)
        streams = [_stream(0, 1 / 0.3, 0.05), _stream(1, 2.5, 0.05)]
        res = group_streams(streams, 2)
        assert res.n_nonempty == 2

    def test_capacity_forces_second_group(self):
        # each p = 0.06, T = 0.1 -> two fit (0.12 > 0.1? no: 0.12 > 0.1, only one fits)
        streams = [_stream(0, 10, 0.06), _stream(1, 10, 0.06)]
        res = group_streams(streams, 2)
        assert res.n_nonempty == 2

    def test_infeasible_raises(self):
        streams = [_stream(i, 10, 0.09) for i in range(3)]
        with pytest.raises(InfeasibleScheduleError):
            group_streams(streams, 2)

    def test_best_effort_mode(self):
        streams = [_stream(i, 10, 0.09) for i in range(3)]
        res = group_streams(streams, 2, strict=False)
        placed = sum(len(g) for g in res.groups)
        assert placed == 3  # all placed somewhere

    def test_result_satisfies_const2(self):
        streams = [
            _stream(0, 10, 0.02),
            _stream(1, 5, 0.02),
            _stream(2, 2.5, 0.02),
            _stream(3, 1 / 0.3, 0.02),
        ]
        res = group_streams(streams, 4)
        assignment = [res.group_of[s.stream_id] for s in streams]
        assert const2_satisfied(streams, assignment)
        assert const1_satisfied(streams, assignment)

    def test_group_of_mapping_consistent(self):
        streams = [_stream(i, 10, 0.02) for i in range(4)]
        res = group_streams(streams, 4)
        for j, grp in enumerate(res.groups):
            for s in grp:
                assert res.group_of[s.stream_id] == j

    def test_invalid_n_servers(self):
        with pytest.raises(ValueError):
            group_streams([_stream(0, 10, 0.01)], 0)

    @given(
        st.lists(
            st.tuples(st.sampled_from([1, 2, 5, 10, 15, 30]), st.floats(0.005, 0.03)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_feasible_grouping_meets_const2(self, raw):
        streams = [_stream(i, fps, p) for i, (fps, p) in enumerate(raw)]
        try:
            res = group_streams(streams, 5)
        except InfeasibleScheduleError:
            return
        assert res.validate()
        assignment = [res.group_of[s.stream_id] for s in streams]
        assert const2_satisfied(streams, assignment)
        assert const1_satisfied(streams, assignment)


class TestAssignment:
    def test_heavy_group_gets_fat_link(self):
        heavy = [_stream(0, 10, 0.01, bits=1e6)]
        light = [_stream(1, 10, 0.01, bits=1e3)]
        grouping = GroupingResult(groups=[heavy, light])
        q = assign_groups_to_servers(grouping, [5.0, 50.0])
        # heavy stream (listed first) must land on the 50 Mbps server (idx 1)
        assert q[0] == 1
        assert q[1] == 0

    def test_resolve_assignment_order(self):
        s0 = _stream(0, 10, 0.01, bits=1e6)
        s1 = _stream(1, 10, 0.01, bits=1e3)
        grouping = GroupingResult(groups=[[s1], [s0]])
        q = resolve_assignment(grouping, [5.0, 50.0], [s0, s1])
        assert len(q) == 2
        # s0 heavy -> fat link
        assert q[0] == 1

    def test_more_groups_than_servers_raises(self):
        grouping = GroupingResult(groups=[[_stream(0, 10, 0.01)], [_stream(1, 10, 0.01)]])
        with pytest.raises(ValueError):
            assign_groups_to_servers(grouping, [10.0])

    def test_empty_groups_absorb_spare_servers(self):
        grouping = GroupingResult(groups=[[_stream(0, 10, 0.01)], [], []])
        q = assign_groups_to_servers(grouping, [10.0, 20.0, 30.0])
        assert len(q) == 1

    def test_assignment_minimizes_cost(self):
        """Hungarian beats the reversed mapping on total bits/bandwidth."""
        g1 = [_stream(0, 30, 0.005, bits=2e6)]
        g2 = [_stream(1, 5, 0.005, bits=1e5)]
        grouping = GroupingResult(groups=[g1, g2])
        streams = g1 + g2
        q_opt = resolve_assignment(grouping, [5.0, 50.0], streams)
        bad_q = [1 - x for x in q_opt]
        assert communication_latency(streams, q_opt, [5.0, 50.0]) <= communication_latency(
            streams, bad_q, [5.0, 50.0]
        )


class TestCommunicationLatency:
    def test_basic(self):
        s = _stream(0, 10, 0.01, bits=1e6)
        lat = communication_latency([s], [0], [10.0])
        assert lat == pytest.approx(0.1)

    def test_dropped_excluded(self):
        s = _stream(0, 10, 0.01, bits=1e6)
        assert communication_latency([s], [-1], [10.0]) == 0.0

    def test_out_of_range_raises(self):
        s = _stream(0, 10, 0.01, bits=1e6)
        with pytest.raises(ValueError):
            communication_latency([s], [5], [10.0])
