"""Tests for PeriodicStream and high-rate splitting (§3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sched import PeriodicStream, split_high_rate_streams


def _stream(sid=0, fps=10.0, p=0.05, r=960.0):
    return PeriodicStream(
        stream_id=sid, fps=fps, resolution=r, processing_time=p, bits_per_frame=1e5
    )


class TestPeriodicStream:
    def test_period_inverse_of_fps(self):
        assert _stream(fps=20.0).period == pytest.approx(0.05)

    def test_load(self):
        assert _stream(fps=10.0, p=0.05).load == pytest.approx(0.5)

    def test_high_rate_detection(self):
        assert _stream(fps=10.0, p=0.15).is_high_rate
        assert not _stream(fps=10.0, p=0.05).is_high_rate

    def test_boundary_not_high_rate(self):
        # p == T exactly: one frame finishes just as the next arrives.
        assert not _stream(fps=10.0, p=0.1).is_high_rate

    def test_parent_defaults_to_self(self):
        assert _stream(sid=7).parent_id == 7

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            _stream(fps=-1.0)
        with pytest.raises(ValueError):
            _stream(p=0.0)


class TestSplitHighRateStreams:
    def test_low_rate_unchanged(self):
        s = _stream(fps=10.0, p=0.05)
        out = split_high_rate_streams([s])
        assert out == [s]

    def test_split_count_matches_ceiling(self):
        # s*p = 10 * 0.25 = 2.5 -> 3 sub-streams (⌈s_i p_i⌉, §3)
        s = _stream(fps=10.0, p=0.25)
        out = split_high_rate_streams([s])
        assert len(out) == 3
        assert all(sub.parent_id == s.stream_id for sub in out)

    def test_substreams_not_high_rate(self):
        s = _stream(fps=30.0, p=0.21)
        out = split_high_rate_streams([s])
        assert all(not sub.is_high_rate for sub in out)

    def test_total_rate_preserved(self):
        s = _stream(fps=12.0, p=0.3)
        out = split_high_rate_streams([s])
        assert sum(sub.fps for sub in out) == pytest.approx(s.fps)

    def test_fresh_ids_assigned(self):
        s1 = _stream(sid=0, fps=10.0, p=0.25)
        s2 = _stream(sid=1, fps=5.0, p=0.05)
        out = split_high_rate_streams([s1, s2])
        ids = [x.stream_id for x in out]
        assert len(set(ids)) == len(ids)

    def test_id_start_override(self):
        s = _stream(sid=0, fps=10.0, p=0.25)
        out = split_high_rate_streams([s], id_start=100)
        assert [x.stream_id for x in out] == [100, 101, 102]

    def test_phases_enumerate(self):
        s = _stream(fps=10.0, p=0.35)
        out = split_high_rate_streams([s])
        assert [x.phase for x in out] == list(range(len(out)))

    def test_mixed_order_preserved(self):
        low = _stream(sid=0, fps=5.0, p=0.05)
        high = _stream(sid=1, fps=10.0, p=0.25)
        out = split_high_rate_streams([low, high])
        assert out[0] == low
        assert all(x.parent_id == 1 for x in out[1:])

    @given(
        st.integers(1, 60),
        st.floats(0.01, 0.5, allow_nan=False),
    )
    def test_property_substreams_feasible_alone(self, fps, p):
        s = PeriodicStream(
            stream_id=0, fps=float(fps), resolution=960.0,
            processing_time=p, bits_per_frame=1.0,
        )
        out = split_high_rate_streams([s])
        for sub in out:
            # §3: after splitting, no stream self-contends on one server.
            assert sub.processing_time <= sub.period + 1e-9
        # count is exactly ⌈s·p⌉ when split
        k = math.ceil(fps * p - 1e-12)
        assert len(out) == max(k, 1)
