"""Tests for the memoized Hungarian group→server assignment."""

import numpy as np
import pytest

from repro.sched import PeriodicStream, group_streams
from repro.sched.assignment import (
    assign_groups_to_servers,
    assignment_cache_size,
    clear_assignment_cache,
    configure_assignment_cache,
    resolve_assignment,
    solve_group_assignment,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    configure_assignment_cache(enabled=True, maxsize=4096)
    clear_assignment_cache()
    yield
    configure_assignment_cache(enabled=True, maxsize=4096)
    clear_assignment_cache()


def _streams(n, fps=10.0):
    return [
        PeriodicStream(
            stream_id=i,
            fps=fps,
            resolution=960.0,
            processing_time=0.01,
            bits_per_frame=1e5 * (i + 1),
        )
        for i in range(n)
    ]


class TestSolveGroupAssignment:
    def test_cached_equals_fresh(self):
        rate = np.array([3e6, 1e6, 2e6])
        bw = np.array([10.0, 30.0, 20.0])
        cached = solve_group_assignment(rate, bw)
        again = solve_group_assignment(rate, bw)
        fresh = solve_group_assignment(rate, bw, use_cache=False)
        assert cached == again == fresh

    def test_heaviest_group_gets_fattest_uplink(self):
        rate = np.array([1e6, 9e6])
        bw = np.array([5.0, 30.0])
        q = solve_group_assignment(rate, bw)
        assert q[1] == 1  # heavy group on the 30 Mbps server
        assert q[0] == 0

    def test_cache_grows_and_clears(self):
        bw = np.array([10.0, 20.0])
        solve_group_assignment(np.array([1e6, 2e6]), bw)
        solve_group_assignment(np.array([2e6, 1e6]), bw)
        assert assignment_cache_size() == 2
        clear_assignment_cache()
        assert assignment_cache_size() == 0

    def test_disabled_cache_stores_nothing(self):
        configure_assignment_cache(enabled=False)
        bw = np.array([10.0, 20.0])
        a = solve_group_assignment(np.array([1e6, 2e6]), bw)
        b = solve_group_assignment(np.array([1e6, 2e6]), bw)
        assert a == b
        assert assignment_cache_size() == 0

    def test_maxsize_evicts_oldest(self):
        configure_assignment_cache(maxsize=2)
        bw = np.array([10.0, 20.0, 30.0])
        for k in range(3):
            solve_group_assignment(np.array([1e6 * (k + 1), 2e6, 3e6]), bw)
        assert assignment_cache_size() == 2

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            configure_assignment_cache(maxsize=0)

    def test_different_bandwidths_do_not_collide(self):
        rate = np.array([5e6, 1e6])
        a = solve_group_assignment(rate, np.array([10.0, 30.0]))
        b = solve_group_assignment(rate, np.array([30.0, 10.0]))
        assert a != b  # heavy group follows the fat uplink


class TestCallerConsistency:
    def test_assign_groups_cached_vs_uncached(self):
        streams = _streams(6)
        grouping = group_streams(streams, 3, strict=False)
        bw = [10.0, 20.0, 30.0]
        q_cached = assign_groups_to_servers(grouping, bw)
        q_fresh = assign_groups_to_servers(grouping, bw, use_cache=False)
        assert q_cached == q_fresh

    def test_resolve_assignment_repeat_hits_cache(self):
        streams = _streams(6)
        grouping = group_streams(streams, 3, strict=False)
        bw = [10.0, 20.0, 30.0]
        q1 = resolve_assignment(grouping, bw, streams)
        size_after_first = assignment_cache_size()
        q2 = resolve_assignment(grouping, bw, streams)
        assert q1 == q2
        assert assignment_cache_size() == size_after_first  # pure hit, no growth

    def test_resolve_matches_assign_ordering(self):
        streams = _streams(5)
        grouping = group_streams(streams, 3, strict=False)
        bw = [10.0, 20.0, 30.0]
        by_stream = resolve_assignment(grouping, bw, streams)
        flat = assign_groups_to_servers(grouping, bw)
        ordered_ids = [s.stream_id for grp in grouping.groups for s in grp]
        for sid, q in zip(ordered_ids, flat):
            assert by_stream[sid] == q
