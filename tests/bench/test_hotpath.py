"""Tests for the hot-path benchmark harness and its CLI/gate plumbing."""

import json

import pytest

from repro.bench.hotpath import (
    BENCHMARKS,
    PROFILES,
    check_result,
    run_benchmark,
    run_benchmarks,
    save_bench,
)
from repro.bench.io import load_results


class TestHarness:
    def test_profiles_cover_every_benchmark(self):
        for profile, sizes in PROFILES.items():
            assert set(sizes) == set(BENCHMARKS), profile

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmark("nope", profile="smoke")
        with pytest.raises(ValueError, match="unknown profile"):
            run_benchmark("gp_update", profile="nope")

    def test_record_shape_and_counters(self):
        r = run_benchmark("gp_update", profile="smoke", seed=0)
        assert r["name"] == "gp_update"
        assert r["profile"] == "smoke"
        assert r["fast"]["wall_s"] > 0 and r["slow"]["wall_s"] > 0
        assert r["speedup"] == pytest.approx(
            r["slow"]["wall_s"] / r["fast"]["wall_s"]
        )
        # the fast run actually exercised the incremental path
        assert r["counters"]["gp.rank1_updates"] > 0

    def test_assignment_bench_hits_cache(self):
        r = run_benchmark("assignment_cache", profile="smoke", seed=0)
        assert r["counters"]["sched.assign_cache_hits"] > 0
        assert r["counters"]["sched.assign_cache_misses"] > 0

    def test_eubo_bench_counts_vectorized_pairs(self):
        r = run_benchmark("eubo_pairs", profile="smoke", seed=0)
        assert r["counters"]["acq.eubo_vectorized_pairs"] > 0

    def test_run_benchmarks_default_runs_all(self):
        names = [r["name"] for r in run_benchmarks(profile="smoke")]
        assert names == list(BENCHMARKS)


class TestSaveAndCheck:
    def _fake(self, fast_s, slow_s, name="gp_update"):
        return {
            "name": name,
            "fast": {"wall_s": fast_s, "iters_per_s": 1 / fast_s},
            "slow": {"wall_s": slow_s, "iters_per_s": 1 / slow_s},
            "speedup": slow_s / fast_s,
        }

    def test_save_bench_roundtrip(self, tmp_path):
        r = self._fake(0.5, 2.0)
        path = save_bench(r, tmp_path)
        assert path.name == "BENCH_gp_update.json"
        loaded = load_results(path)
        assert loaded["speedup"] == pytest.approx(4.0)
        json.loads(path.read_text())  # plain JSON on disk

    def test_check_passes_within_slack(self):
        baseline = self._fake(1.0, 4.0)  # 4x
        result = self._fake(1.05, 4.0)  # slightly slower wall, 3.8x speedup
        assert check_result(result, baseline, slack=1.1) == []

    def test_check_forgives_slow_machine_with_held_speedup(self):
        baseline = self._fake(1.0, 4.0)  # 4x
        result = self._fake(3.0, 12.0)  # 3x slower machine, same 4x speedup
        assert check_result(result, baseline, slack=1.1) == []

    def test_check_fails_on_real_regression(self):
        baseline = self._fake(1.0, 4.0)  # 4x
        result = self._fake(4.0, 4.4)  # slow AND speedup collapsed to 1.1x
        failures = check_result(result, baseline, slack=1.1)
        assert len(failures) == 1
        assert "gp_update" in failures[0]

    def test_check_slack_validation(self):
        with pytest.raises(ValueError):
            check_result(self._fake(1, 2), self._fake(1, 2), slack=0.9)


class TestRecordedBaselines:
    """The committed baselines must stay loadable and self-consistent."""

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_baselines_exist_for_every_benchmark(self, profile):
        from pathlib import Path

        base_dir = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / profile
        )
        for name in BENCHMARKS:
            record = load_results(base_dir / f"BENCH_{name}.json")
            assert record["name"] == name
            assert record["profile"] == profile
            assert record["speedup"] > 0

    def test_medium_bo_hot_path_meets_speedup_floor(self):
        from pathlib import Path

        record = load_results(
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "medium"
            / "BENCH_bo_hot_path.json"
        )
        # the acceptance criterion this PR ships under: >= 2x on medium
        assert record["speedup"] >= 2.0
