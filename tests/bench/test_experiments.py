"""Fast sanity tests of every figure experiment (tiny parameters).

The benchmarks run the figures at paper scale; these tests check that
each experiment produces structurally valid data with the paper's
qualitative shape at miniature sizes.
"""

import numpy as np
import pytest

from repro.bench import (
    fig2_profiling_surfaces,
    fig3a_contention,
    fig3b_pareto,
    fig4_jitter,
    fig6_preference_sweep,
    fig7_scaling,
    fig8_outcome_r2,
    fig9_preference_accuracy,
    fig10a_weight_sensitivity,
    fig10b_threshold_sensitivity,
    format_series,
    format_table,
)

TINY_PAMO = dict(
    n_profile=25,
    n_outcome_space=15,
    n_pref_queries=6,
    batch_size=2,
    max_iters=3,
    n_pool=10,
    n_mc_samples=16,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def data(self):
        return fig2_profiling_surfaces(
            resolutions=(400, 1200, 2000),
            fps_values=(2, 15, 30),
            clip_names=("mot16-02-like", "mot16-05-like"),
            n_frames=30,
            rng=0,
        )

    def test_structure(self, data):
        assert "mot16-02-like" in data
        surf = data["mot16-02-like"]
        assert surf["accuracy"].shape == (3, 3)

    def test_accuracy_rises_with_resolution(self, data):
        for clip in ("mot16-02-like", "mot16-05-like"):
            acc = data[clip]["accuracy"]
            assert acc[-1, -1] > acc[0, 0]

    def test_bandwidth_rises_with_both(self, data):
        net = data["mot16-02-like"]["network_mbps"]
        assert net[-1, -1] > net[0, 0]
        assert net[-1, -1] > 5.0  # Mbps at high config

    def test_consistent_pattern_across_clips(self, data):
        """Fig. 2's key claim: different clips share the surface shape."""
        a = data["mot16-02-like"]["accuracy"].ravel()
        b = data["mot16-05-like"]["accuracy"].ravel()
        assert np.corrcoef(a, b)[0, 1] > 0.6

    def test_latency_flat_in_fps(self, data):
        lat = data["mot16-02-like"]["latency"]
        assert np.allclose(lat[1, :], lat[1, 0])


class TestFig3:
    def test_contention_delays_accumulate(self):
        d = fig3a_contention(horizon=2.0)
        v2 = d["video2_delays"]
        assert v2[-1] > v2[0]
        assert d["max_jitter"] > 0

    def test_pareto_front_nontrivial(self):
        d = fig3b_pareto(n_decisions=20, rng=0)
        assert 2 <= len(d["pareto_indices"]) <= 20
        assert d["normalized"].min() >= 0 and d["normalized"].max() <= 1
        assert len(d["representatives"]) >= 1


class TestFig4:
    def test_algorithm1_removes_jitter(self):
        d = fig4_jitter(horizon=6.0)
        assert d["bad_assignment_jitter"] > 0.01
        assert d["algorithm1_jitter"] < 1e-9


class TestFig6:
    @pytest.fixture(scope="class")
    def records(self):
        return fig6_preference_sweep(
            weight_values=(0.4,),
            objectives=("acc",),
            n_streams=4,
            n_servers=3,
            seeds=(0,),
            pamo_kwargs=TINY_PAMO,
        )

    def test_record_structure(self, records):
        assert len(records) == 1
        rec = records[0]
        assert set(rec["normalized"]) == {"JCAB", "FACT", "PaMO", "PaMO+"}
        assert all(0 <= v <= 1 for v in rec["normalized"].values())

    def test_benefit_ratio_shares(self, records):
        shares = records[0]["benefit_ratio"]["PaMO"]
        assert len(shares) == 5
        assert sum(shares) == pytest.approx(1.0)


class TestFig7:
    def test_structure(self):
        d = fig7_scaling(
            node_counts=(3,),
            video_counts=(4,),
            fixed_videos=4,
            fixed_nodes=3,
            seeds=(0,),
            methods=("FACT", "PaMO+"),
            pamo_kwargs=TINY_PAMO,
        )
        assert len(d["by_nodes"]) == 1
        assert len(d["by_videos"]) == 1
        assert "FACT" in d["by_nodes"][0]["normalized"]


class TestFig8:
    def test_r2_improves_with_data(self):
        d = fig8_outcome_r2(
            train_sizes=(25, 120),
            n_test=12,
            n_reps=2,
            n_frames=24,
            rng=0,
        )
        assert set(d["r2"]) == {"ltc", "acc", "net", "com", "eng"}
        # deterministic objectives should be modelled near-perfectly
        assert d["r2"]["net"][-1] > 0.9
        assert d["r2"]["com"][-1] > 0.9
        # accuracy is the noisy one: more data should not hurt
        assert d["r2"]["acc"][-1] >= d["r2"]["acc"][0] - 0.1


class TestFig9:
    def test_accuracy_grows_with_pairs(self):
        d = fig9_preference_accuracy(
            pair_counts=(3, 18),
            n_test_pairs=100,
            n_reps=2,
            n_outcome_space=20,
            rng=0,
        )
        assert len(d["accuracy"]) == 2
        assert d["accuracy"][1] > d["accuracy"][0]
        assert d["accuracy"][1] > 0.75


class TestFig10:
    def test_weight_sensitivity_structure(self):
        recs = fig10a_weight_sensitivity(
            weight_values=(0.1, 5.0),
            configs=((3, 4),),
            seeds=(0,),
            pamo_kwargs=TINY_PAMO,
        )
        assert len(recs) == 2
        for r in recs:
            assert {"JCAB", "FACT", "PaMO", "PaMO+"} <= set(r)

    def test_threshold_sensitivity_structure(self):
        recs = fig10b_threshold_sensitivity(
            deltas=(0.05, 0.2),
            configs=((3, 4),),
            seeds=(0,),
            pamo_kwargs=TINY_PAMO,
        )
        assert len(recs) == 2
        for r in recs:
            assert np.isfinite(r["PaMO"]) and np.isfinite(r["JCAB"])


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 0.52341], ["x", 2.0]], title="T")
        assert "T" in out and "0.523" in out and "x" in out

    def test_format_series(self):
        out = format_series("n", [1, 2], {"m": [0.1, 0.2]})
        assert "0.100" in out and "0.200" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
