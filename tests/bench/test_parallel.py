"""Tests for the parallel experiment runner."""

import os
import time

import pytest

from repro.bench import default_workers, run_parallel
from repro.obs import telemetry


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _boom(x):
    raise RuntimeError(f"arm {x} failed")


def _mixed_arm(path, x):
    """Arm 0 fails immediately; the rest sleep then leave a marker."""
    if x == 0:
        raise RuntimeError(f"arm {x} failed")
    time.sleep(0.3)
    with open(path, "a") as f:
        f.write(f"{x}\n")
    return x


def _counting_arm(x):
    telemetry.counter("test.arm_calls")
    telemetry.counter("test.arm_sum", x)
    with telemetry.span("test.arm"):
        pass
    return x * x


class TestRunParallel:
    def test_sequential_path(self):
        out = run_parallel(_square, [(1,), (2,), (3,)], n_workers=1)
        assert out == [1, 4, 9]

    def test_parallel_path_preserves_order(self):
        out = run_parallel(_square, [(i,) for i in range(8)], n_workers=2)
        assert out == [i * i for i in range(8)]

    def test_multiple_args(self):
        out = run_parallel(_add, [(1, 2), (3, 4)], n_workers=2)
        assert out == [3, 7]

    def test_single_arm_runs_inline(self):
        out = run_parallel(_square, [(5,)], n_workers=4)
        assert out == [25]

    def test_empty_list(self):
        assert run_parallel(_square, [], n_workers=2) == []

    def test_failure_propagates(self):
        with pytest.raises(RuntimeError, match="arm 1 failed"):
            run_parallel(_boom, [(1,), (2,)], n_workers=2)

    def test_failure_propagates_sequential(self):
        with pytest.raises(RuntimeError):
            run_parallel(_boom, [(1,)], n_workers=1)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_parallel(_square, [(1,)], n_workers=0)

    def test_earliest_failure_wins(self):
        with pytest.raises(RuntimeError, match="arm 0 failed"):
            run_parallel(_boom, [(0,), (1,), (2,)], n_workers=2)

    def test_failure_cancels_pending_arms(self, tmp_path):
        """Fail-fast: pending arms are cancelled, not run to completion."""
        marker = tmp_path / "arms.txt"
        args = [(str(marker), 0)] + [(str(marker), i) for i in range(1, 8)]
        # arm 0 fails immediately; slow writer arms would take ~2s total
        # if all ran, so fail-fast must leave most of them unwritten.

        with pytest.raises(RuntimeError, match="failed"):
            run_parallel(
                _mixed_arm, args, n_workers=2
            )
        written = (
            marker.read_text().strip().splitlines() if marker.exists() else []
        )
        assert len(written) < 6


class TestTelemetryMerge:
    def test_counters_merge_across_processes(self):
        telemetry.reset()
        telemetry.enable()
        try:
            out = run_parallel(_counting_arm, [(i,) for i in range(4)], n_workers=2)
            rep = telemetry.report()
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [0, 1, 4, 9]
        assert rep["counters"]["test.arm_calls"] == 4
        assert rep["counters"]["test.arm_sum"] == 0 + 1 + 2 + 3
        assert rep["spans"]["test.arm"]["count"] == 4

    def test_inline_path_records_directly(self):
        telemetry.reset()
        telemetry.enable()
        try:
            out = run_parallel(_counting_arm, [(2,), (3,)], n_workers=1)
            rep = telemetry.report()
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [4, 9]
        assert rep["counters"]["test.arm_calls"] == 2

    def test_disabled_telemetry_returns_plain_results(self):
        assert not telemetry.enabled
        out = run_parallel(_counting_arm, [(i,) for i in range(3)], n_workers=2)
        assert out == [0, 1, 4]


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1
