"""Tests for the parallel experiment runner."""

import os

import pytest

from repro.bench import default_workers, run_parallel


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _boom(x):
    raise RuntimeError(f"arm {x} failed")


class TestRunParallel:
    def test_sequential_path(self):
        out = run_parallel(_square, [(1,), (2,), (3,)], n_workers=1)
        assert out == [1, 4, 9]

    def test_parallel_path_preserves_order(self):
        out = run_parallel(_square, [(i,) for i in range(8)], n_workers=2)
        assert out == [i * i for i in range(8)]

    def test_multiple_args(self):
        out = run_parallel(_add, [(1, 2), (3, 4)], n_workers=2)
        assert out == [3, 7]

    def test_single_arm_runs_inline(self):
        out = run_parallel(_square, [(5,)], n_workers=4)
        assert out == [25]

    def test_empty_list(self):
        assert run_parallel(_square, [], n_workers=2) == []

    def test_failure_propagates(self):
        with pytest.raises(RuntimeError, match="arm 1 failed"):
            run_parallel(_boom, [(1,), (2,)], n_workers=2)

    def test_failure_propagates_sequential(self):
        with pytest.raises(RuntimeError):
            run_parallel(_boom, [(1,)], n_workers=1)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_parallel(_square, [(1,)], n_workers=0)


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1
