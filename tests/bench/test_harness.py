"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    BANDWIDTH_CHOICES,
    MethodResult,
    make_problem,
    normalize_against_plus,
    run_method,
)
from repro.core import make_preference

SMALL_PAMO = dict(
    n_profile=25,
    n_outcome_space=15,
    n_pref_queries=5,
    batch_size=2,
    max_iters=3,
    n_pool=10,
    n_mc_samples=16,
)


class TestMakeProblem:
    def test_bandwidths_from_choices(self):
        p = make_problem(4, 3, rng=0)
        assert p.n_servers == 3
        assert all(b in BANDWIDTH_CHOICES for b in p.bandwidths_mbps)

    def test_fixed_bandwidth(self):
        p = make_problem(4, 3, fixed_bandwidth=50.0)
        np.testing.assert_array_equal(p.bandwidths_mbps, 50.0)

    def test_deterministic_by_seed(self):
        a = make_problem(4, 5, rng=7)
        b = make_problem(4, 5, rng=7)
        np.testing.assert_array_equal(a.bandwidths_mbps, b.bandwidths_mbps)


class TestRunMethod:
    @pytest.fixture(scope="class")
    def setting(self):
        problem = make_problem(4, 3, rng=0)
        return problem, make_preference(problem)

    @pytest.mark.parametrize("name", ["JCAB", "FACT"])
    def test_baselines_run(self, setting, name):
        problem, pref = setting
        res = run_method(name, problem, pref, seed=0)
        assert res.method == name
        assert np.isfinite(res.true_benefit)
        assert res.outcome.shape == (5,)

    def test_pamo_runs(self, setting):
        problem, pref = setting
        res = run_method("PaMO", problem, pref, seed=0, pamo_kwargs=SMALL_PAMO)
        assert res.extras["n_dm_queries"] > 0

    def test_pamo_plus_runs(self, setting):
        problem, pref = setting
        res = run_method("PaMO+", problem, pref, seed=0, pamo_kwargs=SMALL_PAMO)
        assert res.extras["n_dm_queries"] == 0

    def test_acquisition_variant(self, setting):
        problem, pref = setting
        res = run_method("PaMO_qSR", problem, pref, seed=0, pamo_kwargs=SMALL_PAMO)
        assert np.isfinite(res.true_benefit)

    def test_unknown_method_raises(self, setting):
        problem, pref = setting
        with pytest.raises(ValueError):
            run_method("SkyNet", problem, pref)

    def test_measured_vs_analytic_scoring(self, setting):
        problem, pref = setting
        a = run_method("FACT", problem, pref, measured=False)
        m = run_method("FACT", problem, pref, measured=True)
        # measured latency >= analytic latency (queueing can only add)
        assert m.outcome[0] >= a.outcome[0] - 1e-6


class TestNormalization:
    def test_requires_plus(self):
        with pytest.raises(ValueError):
            normalize_against_plus(
                {"JCAB": MethodResult("JCAB", -1.0, np.zeros(5))}, None
            )

    def test_normalizes_to_unit(self):
        problem = make_problem(3, 2, rng=0)
        pref = make_preference(problem)
        results = {
            "PaMO+": MethodResult("PaMO+", -0.5, np.zeros(5)),
            "JCAB": MethodResult("JCAB", -1.5, np.zeros(5)),
        }
        normalize_against_plus(results, pref)
        assert results["PaMO+"].normalized == pytest.approx(1.0)
        assert 0.0 <= results["JCAB"].normalized < 1.0
