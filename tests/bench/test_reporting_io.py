"""Tests for heatmap rendering and JSON result persistence."""

import numpy as np
import pytest

from repro.bench import (
    format_heatmap,
    format_series,
    format_table,
    load_results,
    save_results,
)


class TestFormatHeatmap:
    def test_basic_render(self):
        m = np.array([[0.0, 0.5], [0.75, 1.0]])
        out = format_heatmap(m, row_labels=["a", "b"], title="T")
        assert "T" in out
        assert "█" in out  # max cell fully shaded
        assert out.splitlines()[1].startswith("a")

    def test_constant_matrix(self):
        out = format_heatmap(np.ones((2, 2)))
        assert "█" not in out or " " not in out  # uniform shading

    def test_col_labels(self):
        out = format_heatmap(
            np.zeros((1, 3)), row_labels=["r"], col_labels=["1", "2", "3"]
        )
        assert "1 2 3" in out

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            format_heatmap(np.zeros(3))
        with pytest.raises(ValueError):
            format_heatmap(np.zeros((2, 2)), row_labels=["only-one"])
        with pytest.raises(ValueError):
            format_heatmap(np.zeros((2, 2)), col_labels=["only-one"])

    def test_monotone_shading(self):
        m = np.array([[0.0, 0.25, 0.5, 0.75, 1.0]])
        line = format_heatmap(m).splitlines()[-1]
        shades = " ░▒▓█"
        cells = line.split(" ")[1:]
        levels = [shades.index(c) if c else 0 for c in cells]
        assert levels == sorted(levels)


class TestResultsIO:
    def test_roundtrip_nested_structure(self, tmp_path):
        data = {
            "scalars": {"a": 1, "b": 2.5, "flag": True, "none": None},
            "arr": np.arange(6, dtype=np.float64).reshape(2, 3),
            "list": [np.float64(3.5), "text", [1, 2]],
        }
        p = save_results(data, tmp_path / "out.json")
        back = load_results(p)
        assert back["scalars"] == data["scalars"]
        np.testing.assert_array_equal(back["arr"], data["arr"])
        assert back["arr"].dtype == np.float64
        assert back["list"][0] == 3.5

    def test_int_array_dtype_preserved(self, tmp_path):
        p = save_results({"x": np.array([1, 2, 3])}, tmp_path / "i.json")
        back = load_results(p)
        assert np.issubdtype(back["x"].dtype, np.integer)

    def test_creates_parent_dirs(self, tmp_path):
        p = save_results([1, 2], tmp_path / "deep" / "dir" / "r.json")
        assert p.exists()

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_results({"f": lambda x: x}, tmp_path / "bad.json")

    def test_real_experiment_record_roundtrips(self, tmp_path):
        from repro.bench import fig4_jitter

        data = fig4_jitter(horizon=3.0)
        p = save_results(data, tmp_path / "fig4.json")
        back = load_results(p)
        assert back["algorithm1_jitter"] == pytest.approx(
            data["algorithm1_jitter"]
        )


class TestDriftingClip:
    def test_phase_concatenation(self):
        from repro.video import SceneConfig, generate_drifting_clip

        clip = generate_drifting_clip(
            [
                (SceneConfig(n_objects=4), 10),
                (SceneConfig(n_objects=20), 15),
            ],
            rng=0,
        )
        assert clip.n_frames == 25
        early = np.mean([f.shape[0] for f in clip.frames[:10]])
        late = np.mean([f.shape[0] for f in clip.frames[10:]])
        assert late > early  # density jumped at the cut

    def test_deterministic(self):
        from repro.video import SceneConfig, generate_drifting_clip

        phases = [(SceneConfig(n_objects=5), 5), (SceneConfig(n_objects=9), 5)]
        a = generate_drifting_clip(phases, rng=1)
        b = generate_drifting_clip(phases, rng=1)
        for fa, fb in zip(a.frames, b.frames):
            np.testing.assert_array_equal(fa, fb)

    def test_empty_raises(self):
        from repro.video import generate_drifting_clip

        with pytest.raises(ValueError):
            generate_drifting_clip([])
