"""Tests for polynomial / separable-product regression."""

import numpy as np
import pytest

from repro.outcomes import PolynomialSurface, SeparableProduct, r2_score


def _grid(seed=0, n=120):
    gen = np.random.default_rng(seed)
    r = gen.uniform(200, 2000, n)
    s = gen.uniform(1, 30, n)
    return r, s


class TestR2Score:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, pred) < 0

    def test_constant_target(self):
        y = np.ones(4)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 0.5) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.ones(3), np.ones(4))


class TestPolynomialSurface:
    def test_recovers_quadratic_linear_product(self):
        r, s = _grid()
        y = (0.5 + 0.2 * r / 2000 + 0.1 * (r / 2000) ** 2) * (1 + 2 * s / 30)
        model = PolynomialSurface(deg_r=2, deg_s=1).fit(r, s, y)
        assert model.score(r, s, y) > 0.999

    def test_generalizes(self):
        r, s = _grid(seed=1)
        y = (r / 2000) ** 2 * s
        model = PolynomialSurface(deg_r=2, deg_s=1).fit(r, s, y)
        r2, s2 = _grid(seed=2)
        y2 = (r2 / 2000) ** 2 * s2
        assert model.score(r2, s2, y2) > 0.99

    def test_underparameterized_fits_worse(self):
        r, s = _grid()
        y = (r / 2000) ** 2 * (s / 30) ** 2  # needs deg_s=2
        lo = PolynomialSurface(deg_r=2, deg_s=1).fit(r, s, y).score(r, s, y)
        hi = PolynomialSurface(deg_r=2, deg_s=2).fit(r, s, y).score(r, s, y)
        assert hi > lo

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PolynomialSurface().predict([1.0], [1.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            PolynomialSurface().fit([1.0, 2.0], [1.0], [1.0, 2.0])

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError):
            PolynomialSurface(deg_r=-1)


class TestSeparableProduct:
    def test_recovers_true_product(self):
        r, s = _grid()
        theta = 1.0 + 0.8 * (r / 2000) ** 2
        eps = 0.3 + 0.7 * s / 30
        y = theta * eps
        model = SeparableProduct(deg_r=2, deg_s=1).fit(r, s, y)
        assert model.score(r, s, y) > 0.999

    def test_components_multiply_to_prediction(self):
        r, s = _grid()
        y = (1 + (r / 2000)) * (s / 30)
        model = SeparableProduct(deg_r=1, deg_s=1).fit(r, s, y)
        pred = model.predict(r[:5], s[:5])
        manual = model.theta(r[:5]) * model.epsilon(s[:5])
        np.testing.assert_allclose(pred, manual)

    def test_handles_nonseparable_gracefully(self):
        r, s = _grid()
        y = np.sin(r / 300) * np.cos(s / 5) + r * s / 60000  # not rank-1
        model = SeparableProduct().fit(r, s, y)
        # Should still produce finite predictions with some skill.
        pred = model.predict(r, s)
        assert np.all(np.isfinite(pred))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SeparableProduct().theta([1.0])
        with pytest.raises(RuntimeError):
            SeparableProduct().epsilon([1.0])

    def test_fit_on_real_outcome_shapes(self):
        """Separable fit achieves high R² on the Eq. 3 network outcome."""
        from repro.video import EncoderModel

        enc = EncoderModel()
        r, s = _grid()
        y = np.array([enc.bitrate(ri, si) for ri, si in zip(r, s)])
        model = SeparableProduct(deg_r=2, deg_s=2).fit(r, s, y)
        assert model.score(r, s, y) > 0.98
