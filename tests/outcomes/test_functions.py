"""Tests for the Eq. 2–5 closed-form outcome functions."""

import numpy as np
import pytest

from repro.outcomes import OBJECTIVES, OutcomeFunctions, default_accuracy_fn
from repro.video import DeviceProfile, EncoderModel


@pytest.fixture
def fns():
    return OutcomeFunctions()


class TestDefaultAccuracyFn:
    def test_monotone_in_resolution(self):
        r = np.array([300.0, 600.0, 1200.0, 2000.0])
        s = np.full(4, 30.0)
        acc = default_accuracy_fn(r, s)
        assert np.all(np.diff(acc) > 0)

    def test_monotone_in_fps(self):
        s = np.array([1.0, 5.0, 15.0, 30.0])
        r = np.full(4, 1920.0)
        acc = default_accuracy_fn(r, s)
        assert np.all(np.diff(acc) > 0)

    def test_range_matches_fig2(self):
        # Fig. 2's mAP spans roughly 0.2 (low config) to 0.8 (high).
        low = default_accuracy_fn(np.array([300.0]), np.array([1.0]))[0]
        high = default_accuracy_fn(np.array([2000.0]), np.array([30.0]))[0]
        assert low < 0.35
        assert 0.7 < high <= 1.0

    def test_fps_clipped_at_native(self):
        a = default_accuracy_fn(np.array([960.0]), np.array([30.0]))
        b = default_accuracy_fn(np.array([960.0]), np.array([60.0]))
        assert a[0] == pytest.approx(b[0])


class TestObjectives:
    def test_canonical_order(self):
        assert OBJECTIVES == ("ltc", "acc", "net", "com", "eng")


class TestOutcomeFunctions:
    def test_accuracy_mean_over_streams(self, fns):
        r = np.array([300.0, 2000.0])
        s = np.array([30.0, 30.0])
        acc = fns.accuracy(r, s)
        a_lo = fns.accuracy([300.0], [30.0])
        a_hi = fns.accuracy([2000.0], [30.0])
        assert acc == pytest.approx((a_lo + a_hi) / 2)

    def test_network_sums_streams(self, fns):
        one = fns.network_mbps([960.0], [10.0])
        two = fns.network_mbps([960.0, 960.0], [10.0, 10.0])
        assert two == pytest.approx(2 * one)

    def test_computation_scales_with_fps(self, fns):
        c10 = fns.computation_tflops([960.0], [10.0])
        c30 = fns.computation_tflops([960.0], [30.0])
        assert c30 == pytest.approx(3 * c10)

    def test_energy_positive_and_increasing(self, fns):
        e_small = fns.energy_watts([480.0], [5.0])
        e_big = fns.energy_watts([1920.0], [30.0])
        assert 0 < e_small < e_big

    def test_latency_uses_assigned_bandwidth(self, fns):
        lat_fast = fns.latency([960.0], [10.0], [0], [100.0])
        lat_slow = fns.latency([960.0], [10.0], [0], [5.0])
        assert lat_slow > lat_fast

    def test_latency_ignores_dropped(self, fns):
        lat = fns.latency([960.0, 480.0], [10.0, 10.0], [0, -1], [10.0])
        expected = fns.latency([960.0], [10.0], [0], [10.0])
        assert lat == pytest.approx(expected)

    def test_latency_all_dropped_raises(self, fns):
        with pytest.raises(ValueError):
            fns.latency([960.0], [10.0], [-1], [10.0])

    def test_latency_bad_assignment_raises(self, fns):
        with pytest.raises(ValueError):
            fns.latency([960.0], [10.0], [4], [10.0])

    def test_vector_order_and_shape(self, fns):
        v = fns.vector([960.0, 480.0], [10.0, 5.0], [0, 0], [50.0])
        assert v.shape == (5,)
        assert v[0] == fns.latency([960.0, 480.0], [10.0, 5.0], [0, 0], [50.0])
        assert v[1] == fns.accuracy([960.0, 480.0], [10.0, 5.0])

    def test_vector_matches_fig2_magnitudes(self, fns):
        """Full config ~ Fig. 2 ceilings: ~15 Mbps, tens of TFLOPs."""
        v = fns.vector([2000.0], [30.0], [0], [100.0])
        ltc, acc, net, com, eng = v
        assert 0.05 < ltc < 1.0
        assert 0.6 < acc < 1.0
        assert 10 < net < 25
        assert 20 < com < 60
        assert eng > 0

    def test_conflict_between_objectives(self, fns):
        """§2.3: accuracy and resources conflict by construction."""
        hi = fns.vector([2000.0], [30.0], [0], [100.0])
        lo = fns.vector([300.0], [2.0], [0], [100.0])
        assert hi[1] > lo[1]  # better accuracy ...
        assert hi[2] > lo[2] and hi[3] > lo[3] and hi[4] > lo[4]  # ... costs more

    def test_custom_accuracy_fn(self):
        fns = OutcomeFunctions(accuracy_fn=lambda r, s: np.full(np.shape(r), 0.42))
        assert fns.accuracy([960.0], [10.0]) == pytest.approx(0.42)
