"""Tests for the profiling harness and GP outcome surrogate bank."""

import numpy as np
import pytest

from repro.outcomes import OutcomeSurrogateBank, profile_configuration, profile_grid
from repro.outcomes.profiler import samples_to_arrays
from repro.video import SceneConfig, generate_clip


@pytest.fixture(scope="module")
def clip():
    return generate_clip(SceneConfig(n_objects=8), n_frames=45, rng=0)


@pytest.fixture(scope="module")
def grid_samples(clip):
    return profile_grid(
        clip, resolutions=[400, 900, 1500, 2000], fps_values=[2, 10, 20, 30], rng=1
    )


class TestProfileConfiguration:
    def test_sample_fields_finite(self, clip):
        s = profile_configuration(clip, 960.0, 10.0, rng=0)
        v = s.vector()
        assert v.shape == (5,)
        assert np.all(np.isfinite(v))
        assert 0.0 <= s.accuracy <= 1.0

    def test_invalid_config_raises(self, clip):
        with pytest.raises(ValueError):
            profile_configuration(clip, -100.0, 10.0)

    def test_fig2_shapes_accuracy(self, grid_samples):
        """mAP grows with resolution at fixed fps (Fig. 2 surface 1)."""
        by_res = {}
        for s in grid_samples:
            if s.fps == 30:
                by_res[s.resolution] = s.accuracy
        accs = [by_res[r] for r in sorted(by_res)]
        assert accs[-1] > accs[0]

    def test_fig2_shapes_bandwidth(self, grid_samples):
        """Bandwidth grows with both knobs (Fig. 2 surface 3)."""
        lo = next(s for s in grid_samples if s.resolution == 400 and s.fps == 2)
        hi = next(s for s in grid_samples if s.resolution == 2000 and s.fps == 30)
        assert hi.network_mbps > 10 * lo.network_mbps

    def test_fig2_latency_independent_of_fps(self, grid_samples):
        """e2e latency is flat in fps when uncontended (Fig. 2 surface 2)."""
        at_900 = [s for s in grid_samples if s.resolution == 900]
        lats = [s.latency for s in at_900]
        assert max(lats) - min(lats) < 1e-9

    def test_fig2_computation_and_power_scale(self, grid_samples):
        hi = next(s for s in grid_samples if s.resolution == 2000 and s.fps == 30)
        lo = next(s for s in grid_samples if s.resolution == 400 and s.fps == 2)
        assert hi.computation_tflops > lo.computation_tflops
        assert hi.power_watts > lo.power_watts

    def test_samples_to_arrays(self, grid_samples):
        x, y = samples_to_arrays(grid_samples)
        assert x.shape == (16, 2)
        assert y.shape == (16, 5)


class TestOutcomeSurrogateBank:
    @pytest.fixture(scope="class")
    def bank(self, grid_samples):
        return OutcomeSurrogateBank().fit_samples(grid_samples, rng=0)

    def test_predict_shapes(self, bank):
        mean, var = bank.predict_per_stream([[960.0, 10.0], [1500.0, 20.0]])
        assert mean.shape == (2, 5)
        assert var.shape == (2, 5)
        assert np.all(var > 0)

    def test_predictions_near_training_data(self, bank, grid_samples):
        x, y = samples_to_arrays(grid_samples)
        mean, _ = bank.predict_per_stream(x)
        # network/computation are nearly deterministic -> tight fit
        np.testing.assert_allclose(mean[:, 2], y[:, 2], rtol=0.2, atol=0.5)
        np.testing.assert_allclose(mean[:, 3], y[:, 3], rtol=0.2, atol=1.0)

    def test_r2_reasonable(self, bank, grid_samples):
        x, y = samples_to_arrays(grid_samples)
        r2 = bank.r2_per_objective(x, y)
        assert set(r2) == {"ltc", "acc", "net", "com", "eng"}
        assert r2["net"] > 0.9
        assert r2["com"] > 0.9

    def test_sampling_shape(self, bank):
        s = bank.sample_per_stream([[960.0, 10.0]] * 3, n_samples=7, rng=0)
        assert s.shape == (7, 3, 5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OutcomeSurrogateBank().predict_per_stream([[960.0, 10.0]])

    def test_update_conditions_new_data(self, bank):
        x_new = np.array([[700.0, 7.0]])
        y_new = np.array([[0.1, 0.5, 2.0, 3.0, 5.0]])
        updated = bank.update(x_new, y_new)
        mean, _ = updated.predict_per_stream(x_new)
        # prediction pulled toward the new observation
        assert abs(mean[0, 1] - 0.5) < 0.2

    def test_aggregate_mean_sum_split(self, bank):
        per_stream = np.array(
            [
                [0.1, 0.6, 2.0, 3.0, 4.0],
                [0.3, 0.8, 1.0, 1.0, 2.0],
            ]
        )
        agg = bank.aggregate(per_stream)
        assert agg[0] == pytest.approx(0.2)  # ltc mean
        assert agg[1] == pytest.approx(0.7)  # acc mean
        assert agg[2] == pytest.approx(3.0)  # net sum
        assert agg[3] == pytest.approx(4.0)  # com sum
        assert agg[4] == pytest.approx(6.0)  # eng sum

    def test_aggregate_with_transmission(self, bank):
        per_stream = np.zeros((2, 5))
        agg = bank.aggregate(
            per_stream,
            assignment=[0, 1],
            bandwidths_mbps=[10.0, 100.0],
            bits_per_frame=np.array([1e6, 1e6]),
        )
        # tx latencies: 0.1 and 0.01 -> mean 0.055
        assert agg[0] == pytest.approx(0.055)

    def test_aggregate_batched(self, bank):
        batch = np.random.default_rng(0).random((4, 3, 5))
        agg = bank.aggregate(batch)
        assert agg.shape == (4, 5)

    def test_aggregate_requires_bits(self, bank):
        with pytest.raises(ValueError):
            bank.aggregate(np.zeros((2, 5)), assignment=[0, 0])

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            OutcomeSurrogateBank(resolution_bounds=(100.0, 100.0))
