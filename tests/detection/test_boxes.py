"""Tests for repro.detection.boxes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.detection import Box, box_area, clip_boxes, iou_matrix


def _box_strategy():
    coord = st.floats(0, 1000, allow_nan=False, allow_infinity=False)
    size = st.floats(1, 500, allow_nan=False, allow_infinity=False)
    return st.tuples(coord, coord, size, size).map(
        lambda t: np.array([t[0], t[1], t[0] + t[2], t[1] + t[3]])
    )


class TestBox:
    def test_area(self):
        assert Box(0, 0, 4, 5).area == 20

    def test_center(self):
        assert Box(0, 0, 4, 6).center == (2.0, 3.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Box(5, 0, 1, 1)

    def test_as_array_roundtrip(self):
        b = Box(1, 2, 3, 4)
        np.testing.assert_array_equal(b.as_array(), [1, 2, 3, 4])


class TestBoxArea:
    def test_vectorized(self):
        boxes = np.array([[0, 0, 2, 2], [0, 0, 3, 1]])
        np.testing.assert_allclose(box_area(boxes), [4, 3])

    def test_inverted_clamps_to_zero(self):
        assert box_area(np.array([[5, 5, 1, 1]]))[0] == 0.0

    def test_empty(self):
        assert box_area(np.zeros((0, 4))).shape == (0,)


class TestClipBoxes:
    def test_clips_to_frame(self):
        out = clip_boxes(np.array([[-10, -10, 50, 50]]), 40, 30)
        np.testing.assert_allclose(out, [[0, 0, 40, 30]])

    def test_copy_not_view(self):
        src = np.array([[0.0, 0.0, 10.0, 10.0]])
        out = clip_boxes(src, 5, 5)
        out[0, 0] = 99
        assert src[0, 0] == 0.0


class TestIoUMatrix:
    def test_identical_boxes(self):
        b = np.array([[0, 0, 10, 10]])
        assert iou_matrix(b, b)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 1, 1]])
        b = np.array([[5, 5, 6, 6]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 2, 1]])
        b = np.array([[1, 0, 3, 1]])
        # inter = 1, union = 3
        assert iou_matrix(a, b)[0, 0] == pytest.approx(1 / 3)

    def test_shape(self):
        a = np.zeros((3, 4))
        a[:, 2:] = 1
        b = np.zeros((5, 4))
        b[:, 2:] = 1
        assert iou_matrix(a, b).shape == (3, 5)

    def test_empty_inputs(self):
        assert iou_matrix(np.zeros((0, 4)), np.zeros((2, 4))).shape == (0, 2)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            iou_matrix(np.zeros((2, 3)), np.zeros((2, 4)))

    @given(_box_strategy(), _box_strategy())
    def test_iou_bounds_and_symmetry(self, a, b):
        m_ab = iou_matrix(a, b)[0, 0]
        m_ba = iou_matrix(b, a)[0, 0]
        assert 0.0 <= m_ab <= 1.0 + 1e-12
        assert m_ab == pytest.approx(m_ba)

    @given(_box_strategy())
    def test_self_iou_is_one(self, a):
        assert iou_matrix(a, a)[0, 0] == pytest.approx(1.0)
