"""Tests for COCO-style mAP@[.5:.95]."""

import numpy as np
import pytest

from repro.detection import mean_average_precision, mean_average_precision_range
from repro.detection.evaluate import FrameResult


def _frame(gt, det, scores):
    return FrameResult(
        gt_boxes=np.asarray(gt, dtype=float).reshape(-1, 4),
        det_boxes=np.asarray(det, dtype=float).reshape(-1, 4),
        det_scores=np.asarray(scores, dtype=float),
    )


class TestMapRange:
    def test_perfect_boxes_score_one(self):
        gt = [[0, 0, 100, 100]]
        fr = _frame(gt, gt, [0.9])
        assert mean_average_precision_range([fr]) == pytest.approx(1.0)

    def test_sloppy_boxes_punished_more_than_map50(self):
        gt = [[0, 0, 100, 100]]
        det = [[0, 0, 100, 62]]  # IoU = 0.62: passes 0.5, fails 0.65+
        fr = _frame(gt, det, [0.9])
        map50 = mean_average_precision([fr])
        map_range = mean_average_precision_range([fr])
        assert map50 > 0.9
        assert map_range < map50
        assert map_range < 0.5

    def test_range_leq_map50(self):
        gen = np.random.default_rng(0)
        frames = []
        for _ in range(10):
            gt = gen.uniform(0, 400, (3, 2))
            gt = np.hstack([gt, gt + gen.uniform(30, 80, (3, 2))])
            jitter = gen.normal(0, 6, gt.shape)
            frames.append(_frame(gt, gt + jitter, gen.uniform(0.5, 1.0, 3)))
        assert mean_average_precision_range(frames) <= mean_average_precision(
            frames
        ) + 1e-9

    def test_custom_thresholds(self):
        gt = [[0, 0, 100, 100]]
        fr = _frame(gt, gt, [0.9])
        assert mean_average_precision_range(
            [fr], iou_thresholds=[0.5, 0.9]
        ) == pytest.approx(1.0)

    def test_invalid_thresholds(self):
        fr = _frame([[0, 0, 1, 1]], [[0, 0, 1, 1]], [0.9])
        with pytest.raises(ValueError):
            mean_average_precision_range([fr], iou_thresholds=[])
        with pytest.raises(ValueError):
            mean_average_precision_range([fr], iou_thresholds=[1.5])

    def test_resolution_sensitivity_stronger_than_map50(self):
        """Config knob relevance: the strict metric separates low/high
        resolution more sharply (localization noise grows at low res)."""
        from repro.detection import DetectorModel, SimulatedDetector
        from repro.video import SceneConfig, generate_clip

        clip = generate_clip(SceneConfig(n_objects=8, object_size=120), n_frames=30, rng=0)
        model = DetectorModel(fp_rate=0.1)

        def metrics(width, seed=0):
            det = SimulatedDetector(model, rng=seed)
            dets = det.detect_clip(clip.frames, width, 30.0)
            frames = [
                FrameResult(g, d.boxes, d.scores)
                for g, d in zip(clip.frames, dets)
            ]
            return (
                mean_average_precision(frames),
                mean_average_precision_range(frames),
            )

        m50_lo, mr_lo = metrics(500.0)
        m50_hi, mr_hi = metrics(1920.0)
        assert mr_hi > mr_lo  # strict metric still orders correctly
        # relative gap at least as large under the strict metric
        assert (mr_hi - mr_lo) >= (m50_hi - m50_lo) - 0.1
