"""Tests for repro.detection.evaluate (matching, PR, AP, mAP)."""

import numpy as np
import pytest

from repro.detection.evaluate import (
    FrameResult,
    average_precision,
    match_detections,
    mean_average_precision,
    precision_recall_curve,
)


def _frame(gt, det, scores):
    return FrameResult(
        gt_boxes=np.asarray(gt, dtype=float).reshape(-1, 4),
        det_boxes=np.asarray(det, dtype=float).reshape(-1, 4),
        det_scores=np.asarray(scores, dtype=float),
    )


class TestMatchDetections:
    def test_perfect_match(self):
        gt = np.array([[0, 0, 10, 10]])
        tp = match_detections(gt, gt, np.array([0.9]))
        assert tp.tolist() == [True]

    def test_low_iou_not_matched(self):
        gt = np.array([[0, 0, 10, 10]])
        det = np.array([[100, 100, 110, 110]])
        tp = match_detections(gt, det, np.array([0.9]))
        assert tp.tolist() == [False]

    def test_one_gt_matches_once(self):
        gt = np.array([[0, 0, 10, 10]])
        det = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        tp = match_detections(gt, det, np.array([0.9, 0.8]))
        assert sorted(tp.tolist()) == [False, True]

    def test_higher_confidence_wins(self):
        gt = np.array([[0, 0, 10, 10]])
        det = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        tp = match_detections(gt, det, np.array([0.5, 0.95]))
        # the 0.95 det (index 1) should take the gt
        assert tp.tolist() == [False, True]

    def test_empty_detections(self):
        gt = np.array([[0, 0, 10, 10]])
        tp = match_detections(gt, np.zeros((0, 4)), np.zeros(0))
        assert tp.shape == (0,)

    def test_empty_gt_all_fp(self):
        det = np.array([[0, 0, 10, 10]])
        tp = match_detections(np.zeros((0, 4)), det, np.array([0.9]))
        assert tp.tolist() == [False]

    def test_iou_threshold_respected(self):
        gt = np.array([[0, 0, 10, 10]])
        det = np.array([[0, 0, 10, 6]])  # IoU = 0.6
        assert match_detections(gt, det, np.array([0.9]), iou_threshold=0.5)[0]
        assert not match_detections(gt, det, np.array([0.9]), iou_threshold=0.7)[0]


class TestPrecisionRecallCurve:
    def test_perfect_detector(self):
        gt = [[0, 0, 10, 10], [20, 20, 30, 30]]
        fr = _frame(gt, gt, [0.9, 0.8])
        r, p = precision_recall_curve([fr])
        assert r[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(p, 1.0)

    def test_all_false_positives(self):
        fr = _frame([[0, 0, 10, 10]], [[50, 50, 60, 60]], [0.9])
        r, p = precision_recall_curve([fr])
        assert r[-1] == 0.0
        assert p[-1] == 0.0

    def test_pools_across_frames(self):
        f1 = _frame([[0, 0, 10, 10]], [[0, 0, 10, 10]], [0.9])
        f2 = _frame([[0, 0, 10, 10]], np.zeros((0, 4)), [])
        r, p = precision_recall_curve([f1, f2])
        assert r[-1] == pytest.approx(0.5)  # 1 of 2 gt found

    def test_empty_everything(self):
        r, p = precision_recall_curve([_frame(np.zeros((0, 4)), np.zeros((0, 4)), [])])
        assert r.size == 0 and p.size == 0


class TestAveragePrecision:
    def test_perfect_is_near_one(self):
        r = np.array([0.5, 1.0])
        p = np.array([1.0, 1.0])
        # 101-point AP includes recall=0 level; envelope=1 there too.
        assert average_precision(r, p) == pytest.approx(1.0)

    def test_zero_recall_is_zero_ish(self):
        r = np.array([0.0])
        p = np.array([0.0])
        assert average_precision(r, p) <= 0.05

    def test_monotone_envelope(self):
        # sawtooth precision should be lifted by the envelope
        r = np.array([0.2, 0.4, 0.6])
        p = np.array([0.5, 1.0, 0.25])
        ap = average_precision(r, p)
        # envelope at r<=0.4 is 1.0
        assert ap > 0.4

    def test_empty(self):
        assert average_precision(np.zeros(0), np.zeros(0)) == 0.0

    def test_between_zero_and_one(self, rng):
        r = np.sort(rng.random(50))
        p = rng.random(50)
        assert 0.0 <= average_precision(r, p) <= 1.0


class TestMeanAveragePrecision:
    def test_single_class_list(self):
        gt = [[0, 0, 10, 10]]
        fr = _frame(gt, gt, [0.9])
        assert mean_average_precision([fr]) == pytest.approx(1.0)

    def test_dict_of_classes(self):
        gt = [[0, 0, 10, 10]]
        good = _frame(gt, gt, [0.9])
        bad = _frame(gt, [[99, 99, 100, 100]], [0.9])
        m = mean_average_precision({0: [good], 1: [bad]})
        assert 0.4 < m < 0.6  # average of ~1 and ~0

    def test_empty_dict(self):
        assert mean_average_precision({}) == 0.0
