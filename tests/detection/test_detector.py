"""Tests for the simulated detector: configuration-sensitive accuracy."""

import numpy as np
import pytest

from repro.detection import DetectorModel, SimulatedDetector
from repro.detection.evaluate import FrameResult, mean_average_precision
from repro.video import SceneConfig, generate_clip


class TestDetectorModel:
    def test_probability_monotone_in_area(self):
        m = DetectorModel()
        areas = np.array([10.0, 100.0, 1000.0, 10000.0])
        p = m.detection_probability(areas)
        assert np.all(np.diff(p) > 0)

    def test_probability_bounded(self):
        m = DetectorModel(max_recall=0.9)
        p = m.detection_probability(np.array([1e12]))
        assert p[0] <= 0.9 + 1e-9

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DetectorModel(max_recall=1.5)
        with pytest.raises(ValueError):
            DetectorModel(area50=-1)


class TestInferFrame:
    def test_detects_large_objects_at_full_res(self):
        det = SimulatedDetector(rng=0)
        gt = np.array([[100, 100, 400, 400]])  # huge object
        hits = sum(
            det.infer_frame(gt, 1920.0).boxes.shape[0] > 0 for _ in range(20)
        )
        assert hits >= 18

    def test_small_objects_lost_at_low_res(self):
        model = DetectorModel(fp_rate=0.0)
        det = SimulatedDetector(model, rng=0)
        gt = np.array([[100, 100, 130, 130]])  # 30px object
        found_low = sum(
            det.infer_frame(gt, 200.0).boxes.shape[0] for _ in range(50)
        )
        det2 = SimulatedDetector(model, rng=0)
        found_high = sum(
            det2.infer_frame(gt, 1920.0).boxes.shape[0] for _ in range(50)
        )
        assert found_high > found_low

    def test_empty_gt_only_fps(self):
        det = SimulatedDetector(DetectorModel(fp_rate=0.0), rng=0)
        out = det.infer_frame(np.zeros((0, 4)), 1920.0)
        assert out.boxes.shape[0] == 0

    def test_boxes_within_frame(self):
        det = SimulatedDetector(rng=1)
        gt = np.array([[0, 0, 60, 60], [1800, 1000, 1920, 1080]])
        out = det.infer_frame(gt, 960.0)
        assert np.all(out.boxes[:, [0, 2]] <= 1920.0)
        assert np.all(out.boxes >= 0.0)

    def test_invalid_width_raises(self):
        det = SimulatedDetector(rng=0)
        with pytest.raises(ValueError):
            det.infer_frame(np.zeros((0, 4)), -5)


class TestDetectClip:
    def _map_at(self, width, fps, *, seed=0, speed=8.0):
        cfg = SceneConfig(n_objects=10, object_size=80, speed=speed)
        clip = generate_clip(cfg, n_frames=60, rng=seed)
        det = SimulatedDetector(rng=seed)
        dets = det.detect_clip(clip.frames, width, fps, native_fps=cfg.native_fps)
        frames = [
            FrameResult(gt, d.boxes, d.scores)
            for gt, d in zip(clip.frames, dets)
        ]
        return mean_average_precision(frames)

    def test_processed_frame_count_scales_with_fps(self):
        cfg = SceneConfig()
        clip = generate_clip(cfg, n_frames=90, rng=0)
        det = SimulatedDetector(rng=0)
        d30 = det.detect_clip(clip.frames, 960, 30.0)
        d10 = det.detect_clip(clip.frames, 960, 10.0)
        n30 = sum(d.processed for d in d30)
        n10 = sum(d.processed for d in d10)
        assert n30 == 90
        assert 25 <= n10 <= 35

    def test_fps_capped_at_native(self):
        cfg = SceneConfig()
        clip = generate_clip(cfg, n_frames=30, rng=0)
        det = SimulatedDetector(rng=0)
        dets = det.detect_clip(clip.frames, 960, 90.0, native_fps=30.0)
        assert len(dets) == 30

    def test_accuracy_increases_with_resolution(self):
        low = np.mean([self._map_at(300, 30, seed=s) for s in range(3)])
        high = np.mean([self._map_at(1920, 30, seed=s) for s in range(3)])
        assert high > low

    def test_accuracy_increases_with_fps(self):
        low = np.mean([self._map_at(1920, 2, seed=s) for s in range(3)])
        high = np.mean([self._map_at(1920, 30, seed=s) for s in range(3)])
        assert high > low

    def test_all_frames_have_results(self):
        cfg = SceneConfig()
        clip = generate_clip(cfg, n_frames=45, rng=0)
        det = SimulatedDetector(rng=0)
        dets = det.detect_clip(clip.frames, 960, 5.0)
        assert len(dets) == 45
        assert dets[0].processed  # first frame always inferred
