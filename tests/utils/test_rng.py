"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils import as_generator, derive_seed, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).integers(0, 1000, 10)
        b = as_generator(7).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_numpy_integer_accepted(self):
        g = as_generator(np.int64(5))
        assert isinstance(g, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawn:
    def test_children_are_independent(self):
        kids = spawn(0, 3)
        draws = [k.integers(0, 10**9) for k in kids]
        assert len(set(draws)) == 3

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 10**9) for g in spawn(42, 4)]
        b = [g.integers(0, 10**9) for g in spawn(42, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(0, -1)


class TestDeriveSeed:
    def test_range(self):
        s = derive_seed(3)
        assert 0 <= s < 2**63

    def test_deterministic(self):
        assert derive_seed(9) == derive_seed(9)
