"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    check_array_1d,
    check_array_2d,
    check_in_range,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_nonstrict(self):
        assert check_positive("x", 0, strict=False) == 0.0

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range("x", 3.0, 0.0, 2.0)


class TestCheckProbability:
    def test_valid(self):
        assert check_probability("p", 0.5) == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)


class TestCheckArray1d:
    def test_coerces_list(self):
        out = check_array_1d("a", [1, 2, 3])
        assert out.dtype == float
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d("a", [[1, 2]])

    def test_min_len(self):
        with pytest.raises(ValueError):
            check_array_1d("a", [1], min_len=2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array_1d("a", [1.0, float("nan")])


class TestCheckArray2d:
    def test_promotes_1d_row(self):
        out = check_array_2d("a", [1.0, 2.0])
        assert out.shape == (1, 2)

    def test_column_check(self):
        with pytest.raises(ValueError):
            check_array_2d("a", np.zeros((3, 2)), n_cols=4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array_2d("a", np.zeros((2, 2, 2)))
