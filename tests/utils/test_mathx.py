"""Tests for repro.utils.mathx, incl. hypothesis properties of gcd_many."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import gcd_many, is_harmonic, log1mexp, normalize_minmax, safe_cholesky


class TestGcdMany:
    def test_simple_integers(self):
        assert gcd_many([4, 6]) == 2

    def test_rational_periods(self):
        # periods 1/5 s and 1/10 s -> gcd 1/10 s
        assert gcd_many([0.2, 0.1]) == pytest.approx(0.1)

    def test_coprime_rationals(self):
        # 1/3 and 1/4 -> 1/12
        assert gcd_many([1 / 3, 1 / 4]) == pytest.approx(1 / 12)

    def test_single_value(self):
        assert gcd_many([0.25]) == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gcd_many([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            gcd_many([1.0, 0.0])
        with pytest.raises(ValueError):
            gcd_many([-0.5])

    @given(st.lists(st.integers(1, 60), min_size=1, max_size=6))
    def test_gcd_of_inverse_fps_divides_all(self, fps_list):
        """gcd of periods 1/s divides every period (property from §3)."""
        periods = [1.0 / s for s in fps_list]
        g = gcd_many(periods)
        for p in periods:
            ratio = p / g
            assert abs(ratio - round(ratio)) < 1e-9 * max(1.0, ratio)

    @given(st.lists(st.integers(1, 60), min_size=1, max_size=6))
    def test_gcd_not_larger_than_min(self, fps_list):
        periods = [1.0 / s for s in fps_list]
        assert gcd_many(periods) <= min(periods) + 1e-12


class TestIsHarmonic:
    def test_harmonic_set(self):
        assert is_harmonic([0.1, 0.2, 0.4])

    def test_non_harmonic(self):
        assert not is_harmonic([0.2, 0.3])

    def test_equal_periods(self):
        assert is_harmonic([0.5, 0.5])

    def test_empty_is_harmonic(self):
        assert is_harmonic([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            is_harmonic([0.0, 1.0])

    @given(
        st.integers(1, 30),
        st.lists(st.integers(1, 8), min_size=1, max_size=5),
    )
    def test_multiples_always_harmonic(self, base_fps, multipliers):
        t_min = 1.0 / base_fps
        periods = [t_min * m for m in multipliers] + [t_min]
        assert is_harmonic(periods)


class TestNormalizeMinmax:
    def test_basic_mapping(self):
        out = normalize_minmax(np.array([5.0]), np.array([0.0]), np.array([10.0]))
        assert out[0] == pytest.approx(0.5)

    def test_clipping(self):
        out = normalize_minmax(np.array([20.0]), np.array([0.0]), np.array([10.0]))
        assert out[0] == 1.0

    def test_no_clip(self):
        out = normalize_minmax(
            np.array([20.0]), np.array([0.0]), np.array([10.0]), clip=False
        )
        assert out[0] == pytest.approx(2.0)

    def test_degenerate_span_gives_half(self):
        out = normalize_minmax(np.array([3.0]), np.array([3.0]), np.array([3.0]))
        assert out[0] == pytest.approx(0.5)

    def test_vector_components(self):
        out = normalize_minmax(
            np.array([1.0, 2.0]), np.array([0.0, 0.0]), np.array([2.0, 4.0])
        )
        np.testing.assert_allclose(out, [0.5, 0.5])


class TestSafeCholesky:
    def test_psd_matrix(self, rng):
        a = rng.normal(size=(6, 6))
        k = a @ a.T + 1e-3 * np.eye(6)
        ell = safe_cholesky(k)
        np.testing.assert_allclose(ell @ ell.T, k, atol=1e-8)

    def test_semidefinite_gets_jitter(self):
        # Rank-1 matrix: plain cholesky fails, jittered succeeds.
        v = np.array([[1.0, 2.0, 3.0]])
        k = v.T @ v
        ell = safe_cholesky(k)
        assert np.all(np.isfinite(ell))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            safe_cholesky(np.zeros((2, 3)))

    def test_indefinite_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            safe_cholesky(np.diag([1.0, -5.0]))


class TestLog1mexp:
    def test_matches_naive_midrange(self):
        x = np.array([-1.0, -2.0, -0.5])
        np.testing.assert_allclose(log1mexp(x), np.log(1 - np.exp(x)), rtol=1e-12)

    def test_extreme_small(self):
        # naive would underflow to log(1-1)= -inf for x near 0
        out = log1mexp(np.array([-1e-12]))
        assert np.isfinite(out[0])

    def test_nonnegative_raises(self):
        with pytest.raises(ValueError):
            log1mexp(np.array([0.0]))
