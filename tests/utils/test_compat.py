"""Deprecation-shim sweep: the PR-1 constructor shims warn and map right.

``absorb_positional`` / ``resolve_deprecated`` keep one release of
backwards compatibility for the keyword-only constructor migration.
These tests pin that every shim (a) fires ``DeprecationWarning``, (b)
maps the legacy spelling onto the new parameter exactly, and (c)
rejects ambiguous double-spellings — both at the helper level and at
representative real call sites (``BOLoop(max_iters=…)``, the scheduler
constructors' legacy positional args).
"""

import warnings

import numpy as np
import pytest

from repro.utils.compat import absorb_positional, resolve_deprecated


class TestResolveDeprecated:
    def test_old_value_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="'max_iters' is deprecated"):
            out = resolve_deprecated(
                "Owner", "max_iters", 7, "n_iterations", None, default=20
            )
        assert out == 7

    def test_new_value_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = resolve_deprecated(
                "Owner", "max_iters", None, "n_iterations", 9, default=20
            )
        assert out == 9

    def test_default_when_neither_given(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = resolve_deprecated(
                "Owner", "max_iters", None, "n_iterations", None, default=20
            )
        assert out == 20

    def test_both_given_raises(self):
        with pytest.raises(TypeError, match="both 'n_iterations' and"):
            resolve_deprecated(
                "Owner", "max_iters", 7, "n_iterations", 9, default=20
            )


class TestAbsorbPositional:
    def test_maps_positionals_in_order_with_warning(self):
        kwargs = {"a": None, "b": None}
        with pytest.warns(DeprecationWarning, match="positionally is deprecated"):
            out = absorb_positional("Owner", (1, 2), ("a", "b"), kwargs)
        assert out == {"a": 1, "b": 2}

    def test_partial_positionals_leave_rest_untouched(self):
        kwargs = {"a": None, "b": 5}
        with pytest.warns(DeprecationWarning):
            out = absorb_positional("Owner", (1,), ("a", "b"), kwargs)
        assert out == {"a": 1, "b": 5}

    def test_no_args_is_silent_noop(self):
        kwargs = {"a": None}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert absorb_positional("Owner", (), ("a",), kwargs) is kwargs

    def test_duplicate_spelling_raises(self):
        with pytest.raises(TypeError, match="multiple values for argument 'a'"):
            absorb_positional("Owner", (1,), ("a",), {"a": 2})

    def test_too_many_positionals_raises(self):
        with pytest.raises(TypeError, match="at most 1 positional"):
            absorb_positional("Owner", (1, 2), ("a",), {"a": None})


class TestRealCallSites:
    """The shims as wired into actual constructors."""

    def _loop_kwargs(self):
        return dict(
            adapter=None,
            observe=lambda xb: xb,
            benefit_of=lambda obs: np.asarray(obs, dtype=float),
            candidates=lambda rng: rng.uniform(0, 1, (4, 1)),
        )

    def test_boloop_max_iters_warns_and_maps(self):
        from repro.bo import BOLoop

        kw = self._loop_kwargs()
        with pytest.warns(DeprecationWarning, match="max_iters"):
            loop = BOLoop(
                kw["adapter"], kw["observe"], kw["benefit_of"], kw["candidates"],
                max_iters=5,
            )
        assert loop.n_iterations == 5
        assert loop.max_iters == 5  # deprecated read-alias

    def test_boloop_n_iterations_silent(self):
        from repro.bo import BOLoop

        kw = self._loop_kwargs()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            loop = BOLoop(
                kw["adapter"], kw["observe"], kw["benefit_of"], kw["candidates"],
                n_iterations=6,
            )
        assert loop.n_iterations == 6

    def test_boloop_both_spellings_raise(self):
        from repro.bo import BOLoop

        kw = self._loop_kwargs()
        with pytest.raises(TypeError, match="deprecated"):
            BOLoop(
                kw["adapter"], kw["observe"], kw["benefit_of"], kw["candidates"],
                max_iters=5, n_iterations=6,
            )

    def test_weighted_scheduler_legacy_positional_rule(self):
        from repro.baselines.weighted import WeightedSumScheduler
        from repro.core import EVAProblem

        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0, 10.0])
        with pytest.warns(DeprecationWarning, match="positionally is deprecated"):
            sched = WeightedSumScheduler(problem, "equal")
        assert sched.rule == "equal"

    def test_weighted_scheduler_keyword_rule_silent(self):
        from repro.baselines.weighted import WeightedSumScheduler
        from repro.core import EVAProblem

        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0, 10.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sched = WeightedSumScheduler(problem, rule="equal")
        assert sched.rule == "equal"


class TestFactJcabAliases:
    @pytest.mark.parametrize(
        "name, alias",
        [("jcab", "n_slots"), ("fact", "max_sweeps")],
    )
    def test_iteration_alias_warns_and_maps(self, name, alias):
        from repro.baselines import make_scheduler
        from repro.core import EVAProblem

        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0, 10.0])
        with pytest.warns(DeprecationWarning, match=alias):
            sched = make_scheduler(name, problem, rng=0, **{alias: 3})
        assert sched.n_iterations == 3
