"""Integration tests for PaMO / PaMO+ (small but real runs)."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import EVAProblem, PaMO, PaMOPlus, make_preference
from repro.pref import DecisionMaker


@pytest.fixture(scope="module")
def setup():
    problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
    pref = make_preference(problem)
    return problem, pref


def _small_pamo(problem, dm, cls=PaMO, **kw):
    defaults = dict(
        n_profile=40,
        n_outcome_space=20,
        n_init_comparisons=3,
        n_pref_queries=6,
        batch_size=2,
        max_iters=5,
        n_pool=12,
        rng=0,
    )
    defaults.update(kw)
    return cls(problem, dm, **defaults)


class TestPaMO:
    def test_runs_end_to_end(self, setup):
        problem, pref = setup
        dm = DecisionMaker(pref, rng=0)
        out = _small_pamo(problem, dm).optimize()
        d = out.decision
        assert d.resolutions.shape == (4,)
        assert d.fps.shape == (4,)
        assert len(d.assignment) >= 4  # split streams may add entries
        assert np.all(np.isfinite(d.outcome))
        assert out.n_dm_queries >= 9  # init + eubo queries

    def test_beats_random_single_sample(self, setup):
        """PaMO's solution should beat the average random decision."""
        problem, pref = setup
        dm = DecisionMaker(pref, rng=1)
        out = _small_pamo(problem, dm, rng=1).optimize()
        z_pamo = pref.value(out.decision.outcome)
        z_random = np.mean(
            [
                pref.value(problem.evaluate(*problem.sample_decision(rng=i)))
                for i in range(20)
            ]
        )
        assert z_pamo > z_random

    def test_phases_reusable(self, setup):
        problem, pref = setup
        dm = DecisionMaker(pref, rng=2)
        pamo = _small_pamo(problem, dm, rng=2)
        bank = pamo.fit_outcome_models()
        assert bank.is_fitted
        learner = pamo.fit_preference_model()
        assert learner.is_fitted
        out = pamo.optimize()  # reuses the fitted models
        assert np.isfinite(out.decision.benefit)

    def test_acquisition_variants_run(self, setup):
        problem, pref = setup
        for name in ("qEI", "qUCB", "qSR"):
            dm = DecisionMaker(pref, rng=3)
            out = _small_pamo(
                problem, dm, acquisition=name, max_iters=3, rng=3
            ).optimize()
            assert np.isfinite(pref.value(out.decision.outcome))

    def test_history_tracked(self, setup):
        problem, pref = setup
        dm = DecisionMaker(pref, rng=4)
        out = _small_pamo(problem, dm, rng=4).optimize()
        assert len(out.history) == out.n_iterations


class TestPaMOPlus:
    def test_runs_without_dm_queries(self, setup):
        problem, pref = setup
        dm = DecisionMaker(pref, rng=0)
        out = _small_pamo(problem, dm, cls=PaMOPlus).optimize()
        assert out.n_dm_queries == 0  # true preference, no comparisons
        assert out.decision.method == "PaMO+"

    def test_plus_roughly_upper_bounds_pamo(self, setup):
        """Across seeds, PaMO+ (true preference) should on average do at
        least as well as PaMO (learned preference)."""
        problem, pref = setup
        z_plus, z_pamo = [], []
        for seed in range(3):
            dm1 = DecisionMaker(pref, rng=seed)
            z_plus.append(
                pref.value(
                    _small_pamo(problem, dm1, cls=PaMOPlus, rng=seed)
                    .optimize()
                    .decision.outcome
                )
            )
            dm2 = DecisionMaker(pref, rng=seed)
            z_pamo.append(
                pref.value(
                    _small_pamo(problem, dm2, rng=seed).optimize().decision.outcome
                )
            )
        assert np.mean(z_plus) >= np.mean(z_pamo) - 0.1

    def test_competitive_with_random_search(self, setup):
        problem, pref = setup
        dm = DecisionMaker(pref, rng=5)
        out = _small_pamo(problem, dm, cls=PaMOPlus, rng=5, max_iters=8).optimize()
        rs = RandomSearch(problem, pref.value, n_samples=30, rng=5).optimize()
        # PaMO+ evaluates ~16-20 configs; random search 30. PaMO+ should
        # be at least close (within 15% of the normalized gap).
        assert pref.value(out.decision.outcome) > rs.true_benefit - 0.35
