"""Tests for EVAProblem and ConfigSpace."""

import numpy as np
import pytest

from repro.core import ConfigSpace, EVAProblem
from repro.sched import const1_satisfied, const2_satisfied


@pytest.fixture
def problem():
    return EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])


class TestConfigSpace:
    def test_defaults(self):
        cs = ConfigSpace()
        assert cs.n_configs == 36

    def test_snap(self):
        cs = ConfigSpace()
        assert cs.snap(700.0, 11.0) == (600.0, 10.0)

    def test_bounds(self):
        b = ConfigSpace().bounds()
        assert b.shape == (2, 2)
        assert b[0, 0] == 300.0 and b[0, 1] == 2000.0

    def test_sample_in_knobs(self):
        cs = ConfigSpace()
        r, s = cs.sample(10, rng=0)
        assert all(v in cs.resolutions for v in r)
        assert all(v in cs.fps_values for v in s)

    def test_all_configs(self):
        cs = ConfigSpace(resolutions=(300.0, 600.0), fps_values=(5.0, 10.0, 15.0))
        assert cs.all_configs().shape == (6, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConfigSpace(resolutions=())
        with pytest.raises(ValueError):
            ConfigSpace(resolutions=(-1.0,))


class TestEVAProblem:
    def test_basic_properties(self, problem):
        assert problem.n_streams == 4
        assert problem.n_servers == 3

    def test_make_streams_splits_high_rate(self):
        # huge resolution at 30 fps: p(r) > 1/30 -> split
        p = EVAProblem(n_streams=1, bandwidths_mbps=[100.0])
        streams = p.make_streams([2000.0], [30.0])
        assert len(streams) > 1
        assert all(not s.is_high_rate for s in streams)

    def test_schedule_satisfies_constraints(self, problem):
        r = np.array([600.0, 600.0, 900.0, 300.0])
        s = np.array([5.0, 10.0, 5.0, 15.0])
        assignment, streams = problem.schedule(r, s)
        assert const2_satisfied(streams, assignment)
        assert const1_satisfied(streams, assignment)

    def test_is_feasible(self, problem):
        assert problem.is_feasible([300.0] * 4, [1.0] * 4)

    def test_evaluate_returns_5_vector(self, problem):
        y = problem.evaluate([600.0] * 4, [5.0] * 4)
        assert y.shape == (5,)
        assert np.all(np.isfinite(y))

    def test_evaluate_monotone_tradeoff(self, problem):
        lo = problem.evaluate([300.0] * 4, [1.0] * 4)
        hi = problem.evaluate([1600.0] * 4, [15.0] * 4)
        assert hi[1] > lo[1]  # accuracy up
        assert hi[2] > lo[2] and hi[3] > lo[3]  # resources up

    def test_evaluate_measured_close_to_analytic(self, problem):
        r = [600.0, 600.0, 300.0, 300.0]
        s = [5.0, 5.0, 10.0, 10.0]
        y_a = problem.evaluate(r, s)
        y_m = problem.evaluate_measured(r, s, horizon=4.0)
        # network/computation/energy track closely
        np.testing.assert_allclose(y_m[2], y_a[2], rtol=0.25)
        np.testing.assert_allclose(y_m[3], y_a[3], rtol=0.25)
        # latency: same order of magnitude (no contention here)
        assert y_m[0] < 3 * y_a[0] + 0.05

    def test_evaluate_decision_explicit_assignment(self, problem):
        r = [600.0] * 4
        s = [5.0] * 4
        y = problem.evaluate_decision(r, s, [0, 0, 1, 2])
        assert y.shape == (5,)

    def test_evaluate_decision_measured_penalizes_overload(self):
        p = EVAProblem(n_streams=3, bandwidths_mbps=[30.0, 30.0])
        r = [2000.0] * 3
        s = [15.0] * 3
        # cram everything on server 0 -> heavy contention
        y_bad = p.evaluate_decision(r, s, [0, 0, 0], measured=True, horizon=4.0)
        y_spread = p.evaluate_decision(r, s, [0, 1, 0], measured=True, horizon=4.0)
        assert y_bad[0] > y_spread[0]

    def test_encode_decode_roundtrip(self, problem):
        r, s = problem.sample_decision(rng=0)
        x = problem.encode(r, s)
        assert x.shape == (8,)
        r2, s2 = problem.decode(x)
        np.testing.assert_array_equal(r, r2)
        np.testing.assert_array_equal(s, s2)

    def test_decode_wrong_size(self, problem):
        with pytest.raises(ValueError):
            problem.decode(np.zeros(5))

    def test_wrong_decision_length(self, problem):
        with pytest.raises(ValueError):
            problem.evaluate([600.0] * 3, [5.0] * 3)

    def test_textures_length_checked(self):
        with pytest.raises(ValueError):
            EVAProblem(n_streams=2, bandwidths_mbps=[10.0], textures=[1.0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EVAProblem(n_streams=0, bandwidths_mbps=[10.0])
