"""Round-trip tests for ScheduleDecision / OptimizationOutcome dicts."""

import json

import numpy as np
import pytest

from repro.core import OptimizationOutcome, ScheduleDecision
from repro.utils import to_jsonable


def _decision():
    return ScheduleDecision(
        resolutions=np.array([600.0, 900.0]),
        fps=np.array([10.0, 15.0]),
        assignment=[np.int64(0), np.int64(1)],
        outcome=np.array([0.05, 0.4, 1.2, 3.3, 20.0]),
        benefit=np.float64(0.73),
        method="PaMO",
    )


def _outcome():
    return OptimizationOutcome(
        decision=_decision(),
        true_benefit=0.7,
        n_iterations=5,
        converged=True,
        history=[np.float64(0.1), 0.5, 0.7],
        n_dm_queries=18,
        extras={"resolutions": np.array([600.0, 900.0]), "seed": np.int64(3)},
    )


class TestScheduleDecisionDict:
    def test_to_dict_is_json_safe(self):
        d = _decision().to_dict()
        text = json.dumps(d)  # raises if any numpy leaks through
        assert json.loads(text) == d
        assert all(isinstance(q, int) for q in d["assignment"])
        assert isinstance(d["benefit"], float)

    def test_round_trip(self):
        orig = _decision()
        back = ScheduleDecision.from_dict(orig.to_dict())
        np.testing.assert_allclose(back.resolutions, orig.resolutions)
        np.testing.assert_allclose(back.fps, orig.fps)
        np.testing.assert_allclose(back.outcome, orig.outcome)
        assert back.assignment == [0, 1]
        assert back.benefit == pytest.approx(0.73)
        assert back.method == "PaMO"
        assert back.n_streams == orig.n_streams


class TestOptimizationOutcomeDict:
    def test_to_dict_is_json_safe(self):
        d = _outcome().to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["extras"]["resolutions"] == [600.0, 900.0]
        assert d["extras"]["seed"] == 3

    def test_round_trip(self):
        orig = _outcome()
        back = OptimizationOutcome.from_dict(orig.to_dict())
        assert back.true_benefit == pytest.approx(0.7)
        assert back.n_iterations == 5
        assert back.converged is True
        assert back.history == pytest.approx([0.1, 0.5, 0.7])
        assert back.n_dm_queries == 18
        np.testing.assert_allclose(back.decision.outcome, orig.decision.outcome)

    def test_none_true_benefit_survives(self):
        out = OptimizationOutcome(decision=_decision())
        back = OptimizationOutcome.from_dict(out.to_dict())
        assert back.true_benefit is None

    def test_save_load_results_uses_to_dict(self, tmp_path):
        from repro.bench import load_results, save_results

        path = save_results({"run": _outcome()}, tmp_path / "out.json")
        data = load_results(path)
        assert data["run"]["decision"]["method"] == "PaMO"
        assert data["run"]["n_dm_queries"] == 18


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = to_jsonable({"a": np.float32(1.5), "b": np.arange(3), "c": (1, 2)})
        assert out == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2]}

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
