"""Tests for utopia computation, Eq. 13 benefit, normalization."""

import numpy as np
import pytest

from repro.core import (
    EVAProblem,
    benefit_ratio,
    compute_bounds,
    compute_utopia,
    make_preference,
    normalized_benefit,
)


@pytest.fixture(scope="module")
def problem():
    return EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])


class TestBoundsAndUtopia:
    def test_bounds_ordered(self, problem):
        lo, hi = compute_bounds(problem)
        assert np.all(lo <= hi)
        assert np.all(lo < hi)  # every objective actually varies

    def test_utopia_components(self, problem):
        lo, hi = compute_bounds(problem)
        u = compute_utopia(problem)
        # lower-better objectives at lo, accuracy at hi
        assert u[0] == lo[0]
        assert u[1] == hi[1]
        assert u[2] == lo[2] and u[3] == lo[3] and u[4] == lo[4]

    def test_utopia_unattainable(self, problem):
        """No single decision achieves the utopia vector (§5.1)."""
        u = compute_utopia(problem)
        pref = make_preference(problem)
        for seed in range(20):
            r, s = problem.sample_decision(rng=seed)
            y = problem.evaluate(r, s)
            assert pref.value(y) < pref.value(u) - 1e-9


class TestMakePreference:
    def test_default_weights(self, problem):
        pref = make_preference(problem)
        np.testing.assert_array_equal(pref.weights, np.ones(5))

    def test_utopia_is_best(self, problem):
        pref = make_preference(problem)
        assert pref.value(pref.utopia) == pytest.approx(0.0)

    def test_custom_weights(self, problem):
        pref = make_preference(problem, weights=[2, 1, 1, 1, 1])
        assert pref.weights[0] == 2


class TestNormalizedBenefit:
    def test_max_maps_to_one(self):
        assert normalized_benefit(-0.5, u_max=-0.5, u_min=-2.5) == pytest.approx(1.0)

    def test_min_maps_to_zero(self):
        assert normalized_benefit(-2.5, u_max=-0.5, u_min=-2.5) == pytest.approx(0.0)

    def test_midpoint(self):
        assert normalized_benefit(-1.5, u_max=-0.5, u_min=-2.5) == pytest.approx(0.5)

    def test_clipping(self):
        assert normalized_benefit(-5.0, u_max=-0.5, u_min=-2.5) == 0.0
        assert normalized_benefit(0.0, u_max=-0.5, u_min=-2.5) == 1.0

    def test_vectorized(self):
        out = normalized_benefit(np.array([-0.5, -2.5]), -0.5, -2.5)
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_degenerate_span(self):
        assert normalized_benefit(-1.0, u_max=-1.0, u_min=-1.0) == 1.0


class TestBenefitRatio:
    def test_shares_sum_to_one(self, problem):
        pref = make_preference(problem, weights=[1, 2, 0.5, 1, 1.5])
        r, s = problem.sample_decision(rng=0)
        y = problem.evaluate(r, s)
        shares = benefit_ratio(pref, y)
        assert shares.shape == (5,)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares >= 0)

    def test_weight_shifts_share(self, problem):
        r, s = problem.sample_decision(rng=1)
        y = problem.evaluate(r, s)
        base = benefit_ratio(make_preference(problem), y)
        heavy = benefit_ratio(make_preference(problem, weights=[5, 1, 1, 1, 1]), y)
        assert heavy[0] > base[0]

    def test_batched(self, problem):
        pref = make_preference(problem)
        ys = np.stack(
            [problem.evaluate(*problem.sample_decision(rng=i)) for i in range(3)]
        )
        shares = benefit_ratio(pref, ys)
        assert shares.shape == (3, 5)
        np.testing.assert_allclose(shares.sum(axis=1), 1.0)
