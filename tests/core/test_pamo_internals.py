"""Unit tests for PaMO's internal machinery (adapter, candidates)."""

import numpy as np
import pytest

from repro.core import EVAProblem, PaMO, make_preference
from repro.core.pamo import _BenefitSurrogate
from repro.pref import DecisionMaker


@pytest.fixture(scope="module")
def setup():
    problem = EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 30.0])
    pref = make_preference(problem)
    dm = DecisionMaker(pref, rng=0)
    pamo = PaMO(
        problem, dm, n_profile=30, n_outcome_space=15, n_pref_queries=5,
        batch_size=2, max_iters=2, n_pool=10, rng=0,
    )
    pamo.fit_outcome_models()
    pamo.fit_preference_model()
    return problem, pref, pamo


class TestBenefitSurrogate:
    def test_requires_exactly_one_head(self, setup):
        problem, pref, pamo = setup
        with pytest.raises(ValueError):
            _BenefitSurrogate(problem, pamo.bank)
        with pytest.raises(ValueError):
            _BenefitSurrogate(
                problem, pamo.bank, learner=pamo.learner, true_preference=pref
            )

    def test_sample_benefit_shape(self, setup):
        problem, pref, pamo = setup
        adapter = _BenefitSurrogate(problem, pamo.bank, learner=pamo.learner)
        x = np.stack([problem.encode(*problem.sample_decision(rng=i)) for i in range(4)])
        z = adapter.sample_benefit(x, 7, np.random.default_rng(0))
        assert z.shape == (7, 4)
        assert np.all(np.isfinite(z))

    def test_benefit_mean_tracks_truth_ordering(self, setup):
        problem, pref, pamo = setup
        adapter = _BenefitSurrogate(problem, pamo.bank, true_preference=pref)
        good = problem.encode(np.full(3, 600.0), np.full(3, 5.0))
        bad = problem.encode(np.full(3, 2000.0), np.full(3, 30.0))
        means = adapter.benefit_mean(np.stack([good, bad]))
        truths = [
            pref.value(problem.evaluate(np.full(3, 600.0), np.full(3, 5.0))),
            pref.value(problem.evaluate(np.full(3, 2000.0), np.full(3, 30.0))),
        ]
        assert (means[0] > means[1]) == (truths[0] > truths[1])

    def test_tx_cache_reused(self, setup):
        problem, pref, pamo = setup
        adapter = _BenefitSurrogate(problem, pamo.bank, learner=pamo.learner)
        x = problem.encode(*problem.sample_decision(rng=3))
        v1 = adapter._tx_mean(x)
        assert len(adapter._tx_cache) == 1
        v2 = adapter._tx_mean(x)
        assert v1 == v2
        assert len(adapter._tx_cache) == 1

    def test_update_conditions_bank(self, setup):
        problem, pref, pamo = setup
        adapter = _BenefitSurrogate(problem, pamo.bank, learner=pamo.learner)
        n_before = adapter.bank._x.shape[0]
        obs = {
            "per_stream": (
                np.array([[960.0, 10.0]]),
                np.array([[0.05, 0.6, 3.0, 4.0, 8.0]]),
            )
        }
        adapter.update(None, obs)
        assert adapter.bank._x.shape[0] == n_before + 1


class TestCandidateGeneration:
    def test_pool_contains_only_feasible(self, setup):
        problem, pref, pamo = setup
        pool = pamo._candidates(np.random.default_rng(0))
        assert pool.shape[0] >= 4
        for x in pool:
            r, s = problem.decode(x)
            assert problem.is_feasible(r, s)

    def test_incumbent_mutations_present(self, setup):
        problem, pref, pamo = setup
        # plant an incumbent and check its neighborhood is explored
        r, s = np.full(3, 600.0), np.full(3, 5.0)
        x_inc = problem.encode(r, s)
        pamo._incumbent = (0.0, x_inc)
        pool = pamo._candidates(np.random.default_rng(1))
        # at least one candidate within 2 knob changes of the incumbent
        diffs = (pool.reshape(pool.shape[0], 3, 2) != x_inc.reshape(3, 2)).any(axis=2)
        assert (diffs.sum(axis=1) <= 2).any()

    def test_pool_deduplicated(self, setup):
        problem, pref, pamo = setup
        pool = pamo._candidates(np.random.default_rng(2))
        assert np.unique(pool, axis=0).shape[0] == pool.shape[0]


class TestIncumbentTracking:
    def test_track_incumbent_keeps_best(self, setup):
        problem, pref, pamo = setup
        xs = np.stack([problem.encode(*problem.sample_decision(rng=i)) for i in range(3)])
        pamo._incumbent = None
        pamo._track_incumbent(xs, np.array([0.1, 0.5, 0.3]))
        assert pamo._incumbent[0] == 0.5
        pamo._track_incumbent(xs, np.array([0.2, 0.1, 0.4]))
        assert pamo._incumbent[0] == 0.5  # unchanged; 0.4 < 0.5
        pamo._track_incumbent(xs, np.array([0.9, 0.1, 0.4]))
        assert pamo._incumbent[0] == 0.9
