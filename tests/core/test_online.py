"""Tests for the online monitoring / re-optimization loop."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import DriftDetector, EVAProblem, OnlineScheduler, make_preference


@pytest.fixture
def problem():
    return EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])


def _make_scheduler_factory(problem):
    pref = make_preference(problem)

    def factory(prob, epoch):
        return RandomSearch(prob, pref.value, n_samples=10, rng=epoch)

    return factory


class TestDriftDetector:
    def test_no_drift_on_match(self):
        d = DriftDetector(rel_threshold=0.2, patience=2)
        y = np.ones(5)
        assert not d.update(y, y * 1.05)
        assert not d.update(y, y * 0.95)

    def test_drift_after_patience(self):
        d = DriftDetector(rel_threshold=0.2, patience=2)
        y = np.ones(5)
        assert not d.update(y, y * 2.0)  # strike 1
        assert d.update(y, y * 2.0)  # strike 2 -> fire

    def test_strikes_reset_on_good_epoch(self):
        d = DriftDetector(rel_threshold=0.2, patience=2)
        y = np.ones(5)
        d.update(y, y * 2.0)
        d.update(y, y)  # resets
        assert not d.update(y, y * 2.0)

    def test_fire_resets_counter(self):
        d = DriftDetector(rel_threshold=0.2, patience=1)
        y = np.ones(5)
        assert d.update(y, y * 2.0)
        assert not d.update(y, y)

    def test_deviation_metric(self):
        d = DriftDetector()
        assert d.deviation(np.array([1.0, 2.0]), np.array([1.0, 3.0])) == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DriftDetector(rel_threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(patience=0)


class TestOnlineScheduler:
    def test_stable_environment_never_reoptimizes(self, problem):
        sched = OnlineScheduler(
            problem,
            _make_scheduler_factory(problem),
            environment=lambda d, e: d.outcome,  # exactly as expected
        )
        log = sched.run(5)
        assert len(log) == 5
        assert sched.n_reoptimizations == 0
        assert all(not r.reoptimized for r in log)

    def test_drift_triggers_reoptimization(self, problem):
        def environment(decision, epoch):
            # from epoch 2 on, latency triples (e.g., link degradation)
            y = decision.outcome.copy()
            if epoch >= 2:
                y[0] *= 3.0
            return y

        sched = OnlineScheduler(
            problem,
            _make_scheduler_factory(problem),
            environment=environment,
            detector=DriftDetector(rel_threshold=0.5, patience=2),
        )
        log = sched.run(6)
        assert sched.n_reoptimizations >= 1
        assert any(r.reoptimized for r in log)

    def test_history_records_deviations(self, problem):
        sched = OnlineScheduler(
            problem,
            _make_scheduler_factory(problem),
            environment=lambda d, e: d.outcome * 1.1,
        )
        log = sched.run(3)
        for r in log:
            assert r.deviation == pytest.approx(0.1, abs=1e-9)

    def test_default_environment_runs_simulator(self, problem):
        sched = OnlineScheduler(problem, _make_scheduler_factory(problem))
        log = sched.run(1)
        assert np.all(np.isfinite(log[0].observed))

    def test_invalid_epochs(self, problem):
        sched = OnlineScheduler(problem, _make_scheduler_factory(problem))
        with pytest.raises(ValueError):
            sched.run(0)

    def test_decision_available_after_run(self, problem):
        sched = OnlineScheduler(
            problem,
            _make_scheduler_factory(problem),
            environment=lambda d, e: d.outcome,
        )
        sched.run(1)
        assert sched.decision is not None
        assert sched.decision.resolutions.shape == (3,)
