"""Tests for the fixed-weight classical schedulers."""

import numpy as np
import pytest

from repro.baselines import WeightedSumScheduler
from repro.core import EVAProblem, make_preference


@pytest.fixture(scope="module")
def problem():
    return EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])


class TestWeightedSumScheduler:
    @pytest.mark.parametrize("rule", ["equal", "roc", "rs", "pseudo"])
    def test_rules_produce_decisions(self, problem, rule):
        out = WeightedSumScheduler(problem, rule, n_candidates=20, rng=0).optimize()
        d = out.decision
        assert d.resolutions.shape == (3,)
        assert np.all(np.isfinite(d.outcome))
        w = out.extras["weights"]
        assert w.shape == (5,)
        assert w.sum() == pytest.approx(1.0)

    def test_explicit_weights(self, problem):
        out = WeightedSumScheduler(
            problem, [0.2, 0.2, 0.2, 0.2, 0.2], n_candidates=20, rng=0
        ).optimize()
        np.testing.assert_allclose(out.extras["weights"], 0.2)

    def test_chebyshev_variant(self, problem):
        out = WeightedSumScheduler(
            problem, "equal", scalarization="chebyshev", n_candidates=20, rng=0
        ).optimize()
        assert np.isfinite(out.decision.benefit)

    def test_rank_emphasis_shifts_decision(self, problem):
        # rank accuracy most important vs energy most important
        acc_first = WeightedSumScheduler(
            problem, "roc", ranks=[5, 1, 4, 3, 2], n_candidates=40, rng=0
        ).optimize()
        eng_first = WeightedSumScheduler(
            problem, "roc", ranks=[2, 5, 4, 3, 1], n_candidates=40, rng=0
        ).optimize()
        assert acc_first.decision.outcome[1] >= eng_first.decision.outcome[1]
        assert eng_first.decision.outcome[4] <= acc_first.decision.outcome[4]

    def test_invalid_inputs(self, problem):
        with pytest.raises(ValueError):
            WeightedSumScheduler(problem, "equal", scalarization="nope")
        with pytest.raises(ValueError):
            WeightedSumScheduler(problem, [1.0, 2.0], rng=0).optimize()
        with pytest.raises(ValueError):
            WeightedSumScheduler(problem, "bogus", rng=0).optimize()

    def test_fixed_weights_trail_true_preference_optimum(self, problem):
        """§1's claim: a fixed rule misses a skewed true preference."""
        skewed = make_preference(problem, weights=[0.2, 5.0, 0.2, 0.2, 0.2])
        out = WeightedSumScheduler(problem, "equal", n_candidates=60, rng=0).optimize()
        z_equal = skewed.value(out.decision.outcome)
        # oracle pick from the same candidate family under the true pref
        best = max(
            skewed.value(problem.evaluate(*problem.sample_decision(rng=i)))
            for i in range(60)
        )
        assert z_equal <= best + 1e-9
