"""Tests for the scheduler registry and Scheduler protocol."""

import pytest

from repro.baselines import (
    FACT,
    JCAB,
    RandomSearch,
    WeightedSumScheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.baselines.registry import _REGISTRY
from repro.core import PaMO, PaMOPlus, Scheduler, make_preference
from repro.bench.harness import make_problem
from repro.pref import DecisionMaker


@pytest.fixture(scope="module")
def problem():
    return make_problem(3, 2, rng=0)


@pytest.fixture(scope="module")
def pref(problem):
    return make_preference(problem)


class TestRegistryContents:
    def test_paper_names_registered(self):
        names = available_schedulers()
        for want in ("pamo", "pamo+", "jcab", "fact", "weighted", "random"):
            assert want in names

    def test_names_sorted_lowercase(self):
        names = available_schedulers()
        assert list(names) == sorted(names)
        assert all(n == n.lower() for n in names)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("pamo")(lambda problem, **kw: None)

    def test_needs_at_least_one_name(self):
        with pytest.raises(ValueError):
            register_scheduler()


class TestMakeScheduler:
    def test_unknown_name_raises(self, problem):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("skynet", problem)

    def test_case_insensitive(self, problem, pref):
        s = make_scheduler("PaMO+", problem, preference=pref, rng=0)
        assert isinstance(s, PaMOPlus)

    def test_jcab_fact_construction(self, problem):
        assert isinstance(make_scheduler("jcab", problem, rng=0), JCAB)
        assert isinstance(make_scheduler("fact", problem), FACT)

    def test_weighted_and_random(self, problem, pref):
        w = make_scheduler("weighted", problem, rng=0, rule="equal")
        assert isinstance(w, WeightedSumScheduler)
        r = make_scheduler("random", problem, preference=pref, rng=0)
        assert isinstance(r, RandomSearch)

    def test_random_needs_benefit_source(self, problem):
        with pytest.raises(ValueError, match="benefit_fn"):
            make_scheduler("random", problem)

    def test_pamo_needs_decision_maker_or_preference(self, problem):
        with pytest.raises(ValueError, match="decision_maker"):
            make_scheduler("pamo", problem)

    def test_pamo_accepts_explicit_decision_maker(self, problem, pref):
        dm = DecisionMaker(pref, rng=0)
        s = make_scheduler("pamo", problem, decision_maker=dm)
        assert isinstance(s, PaMO)
        assert s.decision_maker is dm

    def test_acquisition_variants_preset(self, problem, pref):
        for name, acq_cls in (
            ("pamo_qei", "QEI"),
            ("pamo_qucb", "QUCB"),
            ("pamo_qsr", "QSR"),
        ):
            s = make_scheduler(name, problem, preference=pref, rng=0)
            assert isinstance(s, PaMO)
            assert type(s.acquisition).__name__ == acq_cls

    def test_kwargs_forwarded(self, problem):
        s = make_scheduler("jcab", problem, rng=0, n_iterations=7)
        assert s.n_iterations == 7


class TestSchedulerProtocol:
    def test_every_factory_yields_protocol_instance(self, problem, pref):
        for name in available_schedulers():
            s = make_scheduler(name, problem, preference=pref, rng=0)
            assert isinstance(s, Scheduler), name
            assert isinstance(s.name, str) and s.name, name
            assert callable(s.optimize), name

    def test_name_reflects_method(self, problem, pref):
        assert make_scheduler("jcab", problem, rng=0).name == "JCAB"
        assert make_scheduler("fact", problem).name == "FACT"
        assert make_scheduler(
            "pamo", problem, preference=pref, rng=0
        ).name == "PaMO"
