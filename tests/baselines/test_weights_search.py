"""Tests for classical weight rules, Pareto utilities, and search."""

import numpy as np
import pytest

from repro.baselines import (
    RandomSearch,
    equal_weights,
    exhaustive_best,
    pareto_front,
    pseudo_weights,
    rank_sum_weights,
    roc_weights,
)
from repro.baselines.search import orient_minimize
from repro.core import ConfigSpace, EVAProblem, make_preference


class TestWeightRules:
    def test_equal(self):
        np.testing.assert_allclose(equal_weights(5), 0.2)

    def test_roc_sums_to_one(self):
        w = roc_weights([1, 2, 3, 4, 5])
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)  # rank 1 heaviest

    def test_roc_known_values_k3(self):
        w = roc_weights([1, 2, 3])
        np.testing.assert_allclose(w, [11 / 18, 5 / 18, 2 / 18], atol=1e-12)

    def test_roc_permutation_respected(self):
        w = roc_weights([3, 1, 2])
        assert w[1] > w[2] > w[0]

    def test_rank_sum_k4(self):
        w = rank_sum_weights([1, 2, 3, 4])
        np.testing.assert_allclose(w, [0.4, 0.3, 0.2, 0.1])
        assert w.sum() == pytest.approx(1.0)

    def test_bad_ranks_raise(self):
        with pytest.raises(ValueError):
            roc_weights([1, 1, 2])
        with pytest.raises(ValueError):
            rank_sum_weights([0, 1, 2])

    def test_pseudo_weights_sum_to_one(self):
        front = np.array([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        for i in range(3):
            w = pseudo_weights(front, i)
            assert w.sum() == pytest.approx(1.0)

    def test_pseudo_weights_extreme_points(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        w = pseudo_weights(front, 0)
        # point 0 is best on obj0, worst on obj1 -> all weight on obj0
        np.testing.assert_allclose(w, [1.0, 0.0])

    def test_pseudo_weights_bad_index(self):
        with pytest.raises(ValueError):
            pseudo_weights(np.zeros((2, 2)), 5)


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([[1.0, 2.0]]).tolist() == [0]

    def test_dominated_removed(self):
        y = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        idx = pareto_front(y)
        assert 1 not in idx
        assert set(idx) == {0, 2}

    def test_duplicates_both_kept(self):
        y = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert len(pareto_front(y)) == 2

    def test_nondominated_chain(self):
        # classic anti-chain: all kept
        y = np.array([[1, 4], [2, 3], [3, 2], [4, 1]], dtype=float)
        assert len(pareto_front(y)) == 4

    def test_orient_minimize_flips_accuracy(self):
        y = np.array([[0.1, 0.8, 1.0, 2.0, 3.0]])
        out = orient_minimize(y)
        assert out[0, 1] == -0.8
        assert out[0, 0] == 0.1

    def test_real_problem_front_nontrivial(self):
        """§2.3: the EVA problem's outcome space has >1 Pareto point."""
        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0, 20.0])
        ys = np.stack(
            [problem.evaluate(*problem.sample_decision(rng=i)) for i in range(25)]
        )
        idx = pareto_front(orient_minimize(ys))
        assert len(idx) >= 2


class TestRandomSearch:
    def test_improves_with_more_samples(self):
        problem = EVAProblem(n_streams=3, bandwidths_mbps=[10.0, 20.0])
        pref = make_preference(problem)
        z5 = RandomSearch(problem, pref.value, n_samples=5, rng=0).optimize()
        z50 = RandomSearch(problem, pref.value, n_samples=50, rng=0).optimize()
        assert z50.true_benefit >= z5.true_benefit

    def test_history_monotone(self):
        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0])
        pref = make_preference(problem)
        out = RandomSearch(problem, pref.value, n_samples=20, rng=1).optimize()
        assert all(a <= b for a, b in zip(out.history, out.history[1:]))

    def test_invalid_n(self):
        problem = EVAProblem(n_streams=2, bandwidths_mbps=[10.0])
        with pytest.raises(ValueError):
            RandomSearch(problem, lambda y: 0.0, n_samples=0)


class TestExhaustiveBest:
    def test_oracle_beats_random_search(self):
        space = ConfigSpace(resolutions=(300.0, 900.0), fps_values=(5.0, 15.0))
        problem = EVAProblem(
            n_streams=2, bandwidths_mbps=[10.0, 20.0], config_space=space
        )
        pref = make_preference(problem)
        oracle = exhaustive_best(problem, pref.value)
        rs = RandomSearch(problem, pref.value, n_samples=10, rng=0).optimize()
        assert oracle.benefit >= rs.true_benefit - 1e-12

    def test_space_too_large_raises(self):
        problem = EVAProblem(n_streams=8, bandwidths_mbps=[10.0] * 5)
        with pytest.raises(ValueError):
            exhaustive_best(problem, lambda y: 0.0, max_decisions=1000)
