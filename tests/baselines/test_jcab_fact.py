"""Tests for the JCAB and FACT baseline schedulers."""

import numpy as np
import pytest

from repro.baselines import FACT, JCAB
from repro.core import EVAProblem, make_preference
from repro.sched import PeriodicStream, const1_satisfied


@pytest.fixture(scope="module")
def problem():
    return EVAProblem(n_streams=5, bandwidths_mbps=[10.0, 20.0, 30.0])


def _parent_streams(problem, decision):
    return [
        PeriodicStream(
            stream_id=i,
            fps=float(decision.fps[i]),
            resolution=float(decision.resolutions[i]),
            processing_time=problem.profile.processing_time(decision.resolutions[i]),
            bits_per_frame=problem.encoder.bits_per_frame(decision.resolutions[i]),
        )
        for i in range(decision.n_streams)
    ]


class TestJCAB:
    def test_produces_valid_decision(self, problem):
        out = JCAB(problem, rng=0).optimize()
        d = out.decision
        assert d.resolutions.shape == (5,)
        assert all(r in problem.config_space.resolutions for r in d.resolutions)
        assert all(0 <= q < problem.n_servers for q in d.assignment)
        assert np.all(np.isfinite(d.outcome))

    def test_respects_compute_capacity_mostly(self, problem):
        out = JCAB(problem, rng=0).optimize()
        streams = _parent_streams(problem, out.decision)
        # Lyapunov queues push toward Const1 (utilization <= 1)
        assert const1_satisfied(streams, out.decision.assignment)

    def test_energy_weight_reduces_consumption(self, problem):
        frugal = JCAB(problem, w_acc=0.2, w_eng=5.0, rng=0).optimize()
        greedy = JCAB(problem, w_acc=5.0, w_eng=0.2, rng=0).optimize()
        assert frugal.decision.outcome[4] <= greedy.decision.outcome[4]

    def test_accuracy_weight_raises_accuracy(self, problem):
        frugal = JCAB(problem, w_acc=0.2, w_eng=5.0, rng=0).optimize()
        greedy = JCAB(problem, w_acc=5.0, w_eng=0.2, rng=0).optimize()
        assert greedy.decision.outcome[1] >= frugal.decision.outcome[1]

    def test_history_length(self, problem):
        out = JCAB(problem, n_slots=7, rng=0).optimize()
        assert len(out.history) == 7

    def test_invalid_v(self, problem):
        with pytest.raises(ValueError):
            JCAB(problem, v=0.0)


class TestFACT:
    def test_produces_valid_decision(self, problem):
        out = FACT(problem).optimize()
        d = out.decision
        assert all(r in problem.config_space.resolutions for r in d.resolutions)
        # FACT never adapts frame rate: all at the max knob
        assert np.all(d.fps == max(problem.config_space.fps_values))
        assert all(0 <= q < problem.n_servers for q in d.assignment)

    def test_latency_weight_prefers_small_frames(self, problem):
        lat_heavy = FACT(problem, w_ltc=10.0, w_acc=0.1).optimize()
        acc_heavy = FACT(problem, w_ltc=0.1, w_acc=10.0).optimize()
        assert lat_heavy.decision.outcome[0] <= acc_heavy.decision.outcome[0]
        assert acc_heavy.decision.outcome[1] >= lat_heavy.decision.outcome[1]

    def test_bcd_converges(self, problem):
        out = FACT(problem, max_sweeps=10).optimize()
        assert out.converged
        assert out.n_iterations <= 10

    def test_objective_never_degrades(self, problem):
        out = FACT(problem).optimize()
        hist = out.history
        assert all(b >= a - 1e-9 for a, b in zip(hist, hist[1:]))


class TestBaselinesVsPreference:
    def test_single_objective_methods_ignore_other_objectives(self, problem):
        """The paper's core claim: JCAB/FACT miss objectives outside
        their formulations, so a preference emphasizing those
        objectives separates them from the utopia point."""
        pref_net = make_preference(problem, weights=[0.1, 0.1, 5.0, 0.1, 0.1])
        jcab = JCAB(problem, rng=0).optimize()
        fact = FACT(problem).optimize()
        # A tiny network-frugal config beats both under this preference.
        frugal = problem.evaluate([300.0] * 5, [1.0] * 5)
        assert pref_net.value(frugal) > pref_net.value(jcab.decision.outcome)
        assert pref_net.value(frugal) > pref_net.value(fact.decision.outcome)
